#include <gtest/gtest.h>

#include "common/check.h"
#include "dedup/silo_engine.h"
#include "testing/data.h"

namespace defrag {
namespace {

Fingerprint fp(std::uint8_t tag) {
  Bytes b{tag};
  return Fingerprint::of(b);
}

BlockRecord block(BlockId id, std::initializer_list<std::uint8_t> tags) {
  BlockRecord rec;
  rec.id = id;
  std::uint32_t off = 0;
  for (auto t : tags) {
    rec.entries.emplace_back(fp(t), ChunkLocation{0, off, 100});
    off += 100;
  }
  return rec;
}

TEST(BlockCacheTest, FindAfterInsert) {
  BlockCache cache(4);
  cache.insert(block(1, {1, 2}));
  const ChunkLocation* loc = cache.find(fp(1));
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(loc->offset, 0u);
  EXPECT_NE(cache.find(fp(2)), nullptr);
  EXPECT_EQ(cache.find(fp(3)), nullptr);
}

TEST(BlockCacheTest, EvictsLruBlock) {
  BlockCache cache(2);
  cache.insert(block(1, {1}));
  cache.insert(block(2, {2}));
  (void)cache.find(fp(1));
  cache.insert(block(3, {3}));
  EXPECT_FALSE(cache.contains_block(2));
  EXPECT_EQ(cache.find(fp(2)), nullptr);
  EXPECT_NE(cache.find(fp(1)), nullptr);
}

TEST(BlockCacheTest, ReinsertIsRecencyRefresh) {
  BlockCache cache(2);
  cache.insert(block(1, {1}));
  cache.insert(block(2, {2}));
  cache.insert(block(1, {1}));
  cache.insert(block(3, {3}));
  EXPECT_TRUE(cache.contains_block(1));
  EXPECT_FALSE(cache.contains_block(2));
}

TEST(BlockCacheTest, SharedFingerprintSurvivesOldOwnerEviction) {
  BlockCache cache(2);
  cache.insert(block(1, {7}));
  cache.insert(block(2, {7}));
  (void)cache.find(fp(7));        // container 2 owns it now, MRU
  cache.insert(block(3, {8}));    // evicts block 1
  EXPECT_NE(cache.find(fp(7)), nullptr);
}

TEST(BlockCacheTest, HitMissCounters) {
  BlockCache cache(2);
  cache.insert(block(1, {1}));
  (void)cache.find(fp(1));
  (void)cache.find(fp(9));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BlockCacheTest, MetadataBytesAccounting) {
  const BlockRecord b = block(1, {1, 2, 3});
  EXPECT_EQ(b.metadata_bytes(), 3 * kContainerEntryBytes);
}

TEST(BlockCacheTest, RejectsZeroCapacity) {
  EXPECT_THROW(BlockCache(0), CheckFailure);
}

}  // namespace
}  // namespace defrag

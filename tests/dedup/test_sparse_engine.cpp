#include "dedup/sparse_engine.h"

#include <gtest/gtest.h>

#include "common/sha256.h"
#include "testing/data.h"
#include "testing/engine_config.h"

namespace defrag {
namespace {

SparseIndexingParams test_params() {
  SparseIndexingParams p;
  p.sample_bits = 4;  // denser hooks at small test scale
  return p;
}

TEST(SparseEngineTest, FirstBackupIsAllUnique) {
  SparseEngine engine(testing::small_engine_config(), test_params());
  const Bytes stream = testing::random_bytes(512 * 1024, 170);
  const BackupResult r = engine.backup(1, stream);
  EXPECT_EQ(r.unique_bytes, stream.size());
  EXPECT_EQ(r.removed_bytes, 0u);
  testing::expect_accounting_consistent(r);
  EXPECT_GT(engine.sparse_index_entries(), 0u);
}

TEST(SparseEngineTest, IdenticalSecondBackupDedupsNearlyEverything) {
  SparseEngine engine(testing::small_engine_config(), test_params());
  const Bytes stream = testing::random_bytes(1 << 20, 171);
  engine.backup(1, stream);
  const BackupResult r = engine.backup(2, stream);
  // Identical segments share all hooks: champion election cannot miss.
  EXPECT_GT(r.dedup_efficiency(), 0.99);
  testing::expect_accounting_consistent(r);
}

TEST(SparseEngineTest, NearExactNeverFabricates) {
  SparseEngine engine(testing::small_engine_config(), test_params());
  Bytes stream = testing::random_bytes(1 << 20, 172);
  engine.backup(1, stream);
  for (std::size_t i = 0; i < stream.size(); i += 48 * 1024) stream[i] ^= 0xee;
  const BackupResult r = engine.backup(2, stream);
  testing::expect_accounting_consistent(r);

  Bytes restored;
  engine.restore(2, &restored);
  EXPECT_EQ(Sha256::hash(restored), Sha256::hash(stream));
}

TEST(SparseEngineTest, ChampionLoadsAreBounded) {
  auto params = test_params();
  params.max_champions = 2;
  SparseEngine engine(testing::small_engine_config(), params);
  const Bytes stream = testing::random_bytes(1 << 20, 173);
  engine.backup(1, stream);
  const BackupResult r = engine.backup(2, stream);
  const auto& d = engine.last_decision_stats();
  EXPECT_LE(d.manifests_loaded, d.segments * params.max_champions);
  // Manifest loads are the only seeks this scheme pays.
  EXPECT_EQ(r.io.seeks, d.manifests_loaded);
}

TEST(SparseEngineTest, HookSamplingRespectsRate) {
  SparseIndexingParams p;
  p.sample_bits = 4;  // expect ~1/16 of chunks
  SparseEngine engine(testing::small_engine_config(), p);
  const Bytes stream = testing::random_bytes(2 << 20, 174);
  const BackupResult r = engine.backup(1, stream);
  const auto& d = engine.last_decision_stats();
  const double rate = static_cast<double>(d.hook_count) /
                      static_cast<double>(r.chunk_count);
  EXPECT_NEAR(rate, 1.0 / 16.0, 0.04);
}

TEST(SparseEngineTest, RestoreLosslessAcrossGenerations) {
  SparseEngine engine(testing::small_engine_config(), test_params());
  std::vector<Bytes> streams;
  Bytes base = testing::random_bytes(512 * 1024, 175);
  for (std::uint32_t g = 1; g <= 3; ++g) {
    streams.push_back(base);
    engine.backup(g, base);
    for (std::size_t i = g; i < base.size(); i += 37 * 1024) base[i] ^= 0x21;
  }
  for (std::uint32_t g = 1; g <= 3; ++g) {
    Bytes restored;
    engine.restore(g, &restored);
    EXPECT_EQ(restored, streams[g - 1]) << "generation " << g;
  }
}

TEST(SparseEngineTest, RejectsDegenerateParams) {
  auto cfg = testing::small_engine_config();
  SparseIndexingParams p;
  p.max_champions = 0;
  EXPECT_THROW((SparseEngine{cfg, p}), CheckFailure);
  p = SparseIndexingParams{};
  p.sample_bits = 32;
  EXPECT_THROW((SparseEngine{cfg, p}), CheckFailure);
}

TEST(SparseEngineTest, EmptyStream) {
  SparseEngine engine(testing::small_engine_config(), test_params());
  const BackupResult r = engine.backup(1, {});
  EXPECT_EQ(r.logical_bytes, 0u);
  testing::expect_accounting_consistent(r);
}

}  // namespace
}  // namespace defrag

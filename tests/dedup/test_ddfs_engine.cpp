#include "dedup/ddfs_engine.h"

#include <gtest/gtest.h>

#include "common/sha256.h"
#include "testing/data.h"
#include "testing/engine_config.h"

namespace defrag {
namespace {

TEST(DdfsEngineTest, FirstBackupIsAllUnique) {
  DdfsEngine engine(testing::small_engine_config());
  const Bytes stream = testing::random_bytes(512 * 1024, 100);
  const BackupResult r = engine.backup(1, stream);

  EXPECT_EQ(r.logical_bytes, stream.size());
  EXPECT_EQ(r.unique_bytes, stream.size());
  EXPECT_EQ(r.removed_bytes, 0u);
  EXPECT_EQ(r.redundant_bytes, 0u);
  EXPECT_EQ(r.missed_dup_bytes, 0u);
  EXPECT_GT(r.chunk_count, 0u);
  EXPECT_GT(r.segment_count, 0u);
  testing::expect_accounting_consistent(r);
}

TEST(DdfsEngineTest, IdenticalSecondBackupFullyDeduplicates) {
  DdfsEngine engine(testing::small_engine_config());
  const Bytes stream = testing::random_bytes(512 * 1024, 101);
  engine.backup(1, stream);
  const BackupResult r = engine.backup(2, stream);

  EXPECT_EQ(r.removed_bytes, stream.size());
  EXPECT_EQ(r.unique_bytes, 0u);
  EXPECT_EQ(r.missed_dup_bytes, 0u);
  EXPECT_DOUBLE_EQ(r.dedup_efficiency(), 1.0);
  testing::expect_accounting_consistent(r);
}

TEST(DdfsEngineTest, ExactDedupNeverMissesAcrossEdits) {
  DdfsEngine engine(testing::small_engine_config());
  Bytes stream = testing::random_bytes(512 * 1024, 102);
  engine.backup(1, stream);
  // Edit a region and re-ingest: the engine must still find every true dup.
  for (std::size_t i = 100000; i < 120000; ++i) stream[i] ^= 0x77;
  const BackupResult r = engine.backup(2, stream);
  EXPECT_EQ(r.missed_dup_bytes, 0u);
  EXPECT_EQ(r.removed_bytes, r.redundant_bytes);
  EXPECT_GT(r.unique_bytes, 0u);  // the edited region is new
  testing::expect_accounting_consistent(r);
}

TEST(DdfsEngineTest, RestoreReproducesExactBytes) {
  DdfsEngine engine(testing::small_engine_config());
  const Bytes stream = testing::random_bytes(768 * 1024, 103);
  engine.backup(1, stream);

  Bytes restored;
  const RestoreResult rr = engine.restore(1, &restored);
  EXPECT_EQ(restored, stream);
  EXPECT_EQ(rr.logical_bytes, stream.size());
  EXPECT_GT(rr.sim_seconds, 0.0);
}

TEST(DdfsEngineTest, RestoreAfterDedupReproducesBothGenerations) {
  DdfsEngine engine(testing::small_engine_config());
  Bytes gen1 = testing::random_bytes(512 * 1024, 104);
  engine.backup(1, gen1);
  Bytes gen2 = gen1;
  for (std::size_t i = 0; i < 50000; ++i) gen2[i] ^= 0x11;
  engine.backup(2, gen2);

  Bytes r1, r2;
  engine.restore(1, &r1);
  engine.restore(2, &r2);
  EXPECT_EQ(Sha256::hash(r1), Sha256::hash(gen1));
  EXPECT_EQ(Sha256::hash(r2), Sha256::hash(gen2));
}

TEST(DdfsEngineTest, LocalityCacheSavesSeeksOnSequentialDuplicates) {
  DdfsEngine engine(testing::small_engine_config());
  const Bytes stream = testing::random_bytes(1 << 20, 105);
  engine.backup(1, stream);
  const BackupResult r = engine.backup(2, stream);

  // With perfect locality one metadata prefetch serves a whole container of
  // duplicates: seeks must be far fewer than chunks (2 per container load:
  // index lookup + prefetch).
  EXPECT_LT(r.io.seeks, r.chunk_count / 4);
  EXPECT_GT(engine.metadata_cache().hits(), 0u);
}

TEST(DdfsEngineTest, ThroughputReflectsSimulatedTime) {
  DdfsEngine engine(testing::small_engine_config());
  const Bytes stream = testing::random_bytes(512 * 1024, 106);
  const BackupResult r = engine.backup(1, stream);
  EXPECT_GT(r.throughput_mb_s(), 0.0);
  EXPECT_NEAR(r.throughput_mb_s(),
              static_cast<double>(r.logical_bytes) / 1e6 / r.sim_seconds,
              1e-9);
}

TEST(DdfsEngineTest, IntraStreamDuplicatesDetected) {
  DdfsEngine engine(testing::small_engine_config());
  // One buffer repeated four times inside a single backup stream.
  const Bytes unit = testing::random_bytes(256 * 1024, 107);
  Bytes stream;
  for (int i = 0; i < 4; ++i) {
    stream.insert(stream.end(), unit.begin(), unit.end());
  }
  const BackupResult r = engine.backup(1, stream);
  EXPECT_GT(r.removed_bytes, 2 * unit.size());
  EXPECT_EQ(r.missed_dup_bytes, 0u);
  testing::expect_accounting_consistent(r);

  Bytes restored;
  engine.restore(1, &restored);
  EXPECT_EQ(restored, stream);
}

TEST(DdfsEngineTest, StoredBytesMatchAccounting) {
  DdfsEngine engine(testing::small_engine_config());
  const Bytes s1 = testing::random_bytes(300 * 1024, 108);
  const Bytes s2 = testing::random_bytes(300 * 1024, 109);
  const auto r1 = engine.backup(1, s1);
  const auto r2 = engine.backup(2, s2);
  EXPECT_EQ(engine.stored_data_bytes(), r1.stored_bytes() + r2.stored_bytes());
}

TEST(DdfsEngineTest, EmptyStreamIsHarmless) {
  DdfsEngine engine(testing::small_engine_config());
  const BackupResult r = engine.backup(1, {});
  EXPECT_EQ(r.logical_bytes, 0u);
  EXPECT_EQ(r.chunk_count, 0u);
  Bytes restored;
  engine.restore(1, &restored);
  EXPECT_TRUE(restored.empty());
}

}  // namespace
}  // namespace defrag

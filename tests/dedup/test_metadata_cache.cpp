#include "dedup/metadata_cache.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "testing/data.h"

namespace defrag {
namespace {

Fingerprint fp(std::uint8_t tag) {
  Bytes b{tag};
  return Fingerprint::of(b);
}

std::vector<ContainerEntry> entries_for(std::initializer_list<std::uint8_t> tags,
                                        SegmentId seg = 0) {
  std::vector<ContainerEntry> out;
  std::uint32_t off = 0;
  for (auto t : tags) {
    out.push_back(ContainerEntry{fp(t), off, 100, seg});
    off += 100;
  }
  return out;
}

TEST(MetadataCacheTest, FindAfterInsert) {
  MetadataCache cache(4);
  cache.insert(1, entries_for({1, 2, 3}, 9));
  const auto hit = cache.find(fp(2));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->container, 1u);
  EXPECT_EQ(hit->entry->segment, 9u);
  EXPECT_EQ(hit->entry->offset, 100u);
}

TEST(MetadataCacheTest, MissReturnsNullopt) {
  MetadataCache cache(4);
  cache.insert(1, entries_for({1}));
  EXPECT_FALSE(cache.find(fp(99)).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(MetadataCacheTest, EvictsLruContainerAndItsFingerprints) {
  MetadataCache cache(2);
  cache.insert(1, entries_for({1}));
  cache.insert(2, entries_for({2}));
  (void)cache.find(fp(1));               // container 1 now MRU
  cache.insert(3, entries_for({3}));     // evicts container 2
  EXPECT_FALSE(cache.contains_container(2));
  EXPECT_FALSE(cache.find(fp(2)).has_value());
  EXPECT_TRUE(cache.find(fp(1)).has_value());
  EXPECT_TRUE(cache.find(fp(3)).has_value());
}

TEST(MetadataCacheTest, ReinsertRefreshesRecency) {
  MetadataCache cache(2);
  cache.insert(1, entries_for({1}));
  cache.insert(2, entries_for({2}));
  cache.insert(1, entries_for({1}));  // refresh, not duplicate
  cache.insert(3, entries_for({3}));  // evicts 2
  EXPECT_TRUE(cache.contains_container(1));
  EXPECT_FALSE(cache.contains_container(2));
}

TEST(MetadataCacheTest, DuplicateFingerprintNewestContainerWins) {
  MetadataCache cache(4);
  cache.insert(1, entries_for({7}, 1));
  cache.insert(2, entries_for({7}, 2));
  const auto hit = cache.find(fp(7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->container, 2u);
  EXPECT_EQ(hit->entry->segment, 2u);
}

TEST(MetadataCacheTest, EvictingOldOwnerKeepsNewerMapping) {
  MetadataCache cache(2);
  cache.insert(1, entries_for({7}, 1));
  cache.insert(2, entries_for({7}, 2));  // fp 7 now owned by container 2
  (void)cache.find(fp(7));               // touches container 2
  cache.insert(3, entries_for({8}));     // evicts container 1
  // fp 7 must still resolve through container 2.
  const auto hit = cache.find(fp(7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->container, 2u);
}

TEST(MetadataCacheTest, CountsContainers) {
  MetadataCache cache(8);
  cache.insert(1, entries_for({1}));
  cache.insert(2, entries_for({2}));
  EXPECT_EQ(cache.container_count(), 2u);
}

TEST(MetadataCacheTest, RejectsZeroCapacity) {
  EXPECT_THROW(MetadataCache(0), CheckFailure);
}

}  // namespace
}  // namespace defrag

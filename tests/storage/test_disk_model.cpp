#include "storage/disk_model.h"

#include <gtest/gtest.h>

namespace defrag {
namespace {

TEST(DiskModelTest, ReadWriteSecondsScaleLinearly) {
  DiskModel d{.seek_seconds = 0.01, .read_mb_per_s = 100.0,
              .write_mb_per_s = 50.0};
  EXPECT_DOUBLE_EQ(d.read_seconds(100'000'000), 1.0);
  EXPECT_DOUBLE_EQ(d.read_seconds(200'000'000), 2.0);
  EXPECT_DOUBLE_EQ(d.write_seconds(50'000'000), 1.0);
}

TEST(DiskSimTest, SeekChargesSeekTime) {
  DiskSim sim(DiskModel{.seek_seconds = 0.005});
  sim.seek();
  sim.seek();
  EXPECT_DOUBLE_EQ(sim.elapsed_seconds(), 0.010);
  EXPECT_EQ(sim.stats().seeks, 2u);
}

TEST(DiskSimTest, ClockIsMonotone) {
  DiskSim sim;
  double prev = sim.elapsed_seconds();
  for (int i = 0; i < 100; ++i) {
    switch (i % 4) {
      case 0: sim.seek(); break;
      case 1: sim.read(1000); break;
      case 2: sim.write(1000); break;
      case 3: sim.compute(0.001); break;
    }
    EXPECT_GE(sim.elapsed_seconds(), prev);
    prev = sim.elapsed_seconds();
  }
}

TEST(DiskSimTest, WriteBehindCountsBytesButNoTime) {
  DiskSim sim;
  sim.write_behind(123456);
  EXPECT_EQ(sim.stats().bytes_written, 123456u);
  EXPECT_DOUBLE_EQ(sim.elapsed_seconds(), 0.0);
}

TEST(DiskSimTest, ResetClearsEverything) {
  DiskSim sim;
  sim.seek();
  sim.read(100);
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.elapsed_seconds(), 0.0);
  EXPECT_EQ(sim.stats().seeks, 0u);
  EXPECT_EQ(sim.stats().bytes_read, 0u);
}

TEST(DiskSimTest, MixedOperationsAccumulate) {
  DiskModel m{.seek_seconds = 0.01, .read_mb_per_s = 100.0,
              .write_mb_per_s = 100.0};
  DiskSim sim(m);
  sim.seek();             // 0.01
  sim.read(10'000'000);   // 0.1
  sim.write(20'000'000);  // 0.2
  sim.compute(0.05);      // 0.05
  EXPECT_NEAR(sim.elapsed_seconds(), 0.36, 1e-12);
}

TEST(FragmentedReadTest, MatchesPaperEquationOne) {
  // Paper Eq. (1): F(read) = N * T_seek + size / W_seq.
  DiskModel d{.seek_seconds = 0.01, .read_mb_per_s = 100.0};
  const double t1 = fragmented_read_seconds(d, 1, 100'000'000);
  const double tn = fragmented_read_seconds(d, 50, 100'000'000);
  EXPECT_DOUBLE_EQ(t1, 0.01 + 1.0);
  EXPECT_DOUBLE_EQ(tn, 0.50 + 1.0);
  // The seek-time difference is exactly (N-1) * T_seek.
  EXPECT_NEAR(tn - t1, 49 * 0.01, 1e-12);
}

TEST(IoStatsTest, PlusEqualsAccumulates) {
  IoStats a{.seeks = 1, .bytes_read = 10, .bytes_written = 100};
  IoStats b{.seeks = 2, .bytes_read = 20, .bytes_written = 200};
  a += b;
  EXPECT_EQ(a.seeks, 3u);
  EXPECT_EQ(a.bytes_read, 30u);
  EXPECT_EQ(a.bytes_written, 300u);
}

}  // namespace
}  // namespace defrag

#include "storage/catalog.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/dedup_system.h"
#include "testing/data.h"
#include "testing/engine_config.h"
#include "workload/backup_series.h"

namespace defrag {
namespace {

TEST(GenerationCatalogTest, AddAndFind) {
  GenerationCatalog c;
  c.add("/a", 0, 100);
  c.add("/b", 100, 50);
  const auto a = c.find("/a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->stream_offset, 0u);
  EXPECT_EQ(a->size, 100u);
  EXPECT_FALSE(c.find("/missing").has_value());
  EXPECT_EQ(c.total_bytes(), 150u);
}

TEST(GenerationCatalogTest, RejectsOutOfOrder) {
  GenerationCatalog c;
  c.add("/a", 100, 50);
  EXPECT_THROW(c.add("/b", 0, 50), CheckFailure);
  EXPECT_THROW(c.add("/c", 120, 10), CheckFailure);  // overlaps /a
}

TEST(GenerationCatalogTest, AllowsGaps) {
  GenerationCatalog c;
  c.add("/a", 0, 100);
  c.add("/b", 200, 50);  // a hole is fine (e.g. sparse metadata)
  EXPECT_EQ(c.total_bytes(), 250u);
}

TEST(CatalogTest, PerGenerationIsolation) {
  Catalog c;
  c.create(1).add("/a", 0, 10);
  c.create(2).add("/b", 0, 20);
  EXPECT_TRUE(c.get(1).find("/a").has_value());
  EXPECT_FALSE(c.get(2).find("/a").has_value());
  EXPECT_THROW(c.create(1), CheckFailure);
  EXPECT_THROW(c.get(9), CheckFailure);
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(9));
}

class FileRestoreTest : public ::testing::Test {
 protected:
  FileRestoreTest()
      : sys_(EngineKind::kDefrag, testing::small_engine_config()) {
    workload::FsParams fs;
    fs.initial_files = 10;
    fs.mean_file_bytes = 64 * 1024;
    fs.mutation.file_modify_prob = 0.5;
    workload::SingleUserSeries series(7878, fs);
    for (std::uint32_t g = 1; g <= 4; ++g) {
      backups_.push_back(series.next());
      sys_.ingest_backup(backups_.back());
    }
  }

  DedupSystem sys_;
  std::vector<workload::Backup> backups_;
};

TEST_F(FileRestoreTest, EveryFileRestoresExactly) {
  for (const auto& backup : backups_) {
    for (const auto& f : backup.files) {
      Bytes out;
      const FileRestoreResult r =
          sys_.restore_file(backup.generation, f.path, &out);
      EXPECT_EQ(r.file_bytes, f.size);
      ASSERT_EQ(out.size(), f.size) << f.path;
      EXPECT_TRUE(std::equal(
          out.begin(), out.end(),
          backup.stream.begin() + static_cast<std::ptrdiff_t>(f.stream_offset)))
          << f.path << " gen " << backup.generation;
    }
  }
}

TEST_F(FileRestoreTest, FileRestoreCheaperThanFullRestore) {
  const auto& backup = backups_.back();
  const auto& f = backup.files.front();
  const FileRestoreResult file_r =
      sys_.restore_file(backup.generation, f.path, nullptr);
  const RestoreResult full_r = sys_.restore(backup.generation);
  EXPECT_LT(file_r.sim_seconds, full_r.sim_seconds);
  EXPECT_LE(file_r.container_loads, full_r.container_loads);
}

TEST_F(FileRestoreTest, UnknownPathRejected) {
  EXPECT_THROW(sys_.restore_file(1, "/no/such/file", nullptr), CheckFailure);
}

TEST_F(FileRestoreTest, UncatalogedGenerationRejected) {
  sys_.ingest_as(9, testing::random_bytes(64 * 1024, 7879));
  EXPECT_THROW(sys_.restore_file(9, "/anything", nullptr), CheckFailure);
}

TEST_F(FileRestoreTest, FragmentCountDrivesSimulatedLatency) {
  // Paper Eq. (1) at file granularity: latency grows with container loads.
  const auto& backup = backups_.back();
  double max_loads_latency = 0.0;
  std::uint64_t max_loads = 0;
  double min_loads_latency = 1e18;
  std::uint64_t min_loads = ~0ull;
  for (const auto& f : backup.files) {
    if (f.size < 32 * 1024) continue;  // skip tiny files
    const FileRestoreResult r =
        sys_.restore_file(backup.generation, f.path, nullptr);
    if (r.container_loads > max_loads) {
      max_loads = r.container_loads;
      max_loads_latency = r.sim_seconds;
    }
    if (r.container_loads < min_loads) {
      min_loads = r.container_loads;
      min_loads_latency = r.sim_seconds;
    }
  }
  if (max_loads > min_loads) {
    EXPECT_GT(max_loads_latency, min_loads_latency);
  }
}

}  // namespace
}  // namespace defrag

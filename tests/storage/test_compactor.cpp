#include "storage/compactor.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/sha256.h"
#include "core/dedup_system.h"
#include "dedup/restore_strategies.h"
#include "testing/data.h"
#include "testing/engine_config.h"
#include "workload/backup_series.h"

namespace defrag {
namespace {

/// Build a small multi-generation store through the DDFS engine and return
/// the system plus original stream digests.
struct Fixture {
  Fixture() : sys(EngineKind::kDdfs, testing::small_engine_config()) {
    workload::FsParams fs;
    fs.initial_files = 10;
    fs.mean_file_bytes = 48 * 1024;
    fs.mutation.file_modify_prob = 0.5;
    workload::SingleUserSeries series(9090, fs);
    for (std::uint32_t g = 1; g <= 5; ++g) {
      const auto b = series.next();
      digests.push_back(Sha256::hash(b.stream));
      sys.ingest_as(g, b.stream);
    }
  }

  const EngineBase& base() const {
    return dynamic_cast<const EngineBase&>(sys.engine());
  }

  DedupSystem sys;
  std::vector<Sha256::Digest> digests;
};

RestoreResult strategy_restore(const ContainerStore& store,
                               const Recipe& recipe, Bytes* out) {
  RestoreOptions opt;
  opt.cache_containers = 4;
  return restore_with_strategy(store, recipe, DiskModel{}, opt, out);
}

TEST(CompactorTest, RetainedGenerationsSurviveByteForByte) {
  Fixture fx;
  Compactor compactor(fx.base().config().container_bytes);
  ContainerStore fresh_store;
  RecipeStore fresh_recipes;
  DiskSim sim;
  compactor.compact(fx.base().container_store(), fx.base().recipe_store(),
                    {3, 4, 5}, &fresh_store, &fresh_recipes, sim);

  for (std::uint32_t g : {3u, 4u, 5u}) {
    Bytes out;
    strategy_restore(fresh_store, fresh_recipes.get(g), &out);
    EXPECT_EQ(Sha256::hash(out), fx.digests[g - 1]) << "generation " << g;
  }
}

TEST(CompactorTest, DroppedGenerationsAreGone) {
  Fixture fx;
  Compactor compactor;
  ContainerStore fresh_store;
  RecipeStore fresh_recipes;
  DiskSim sim;
  compactor.compact(fx.base().container_store(), fx.base().recipe_store(),
                    {4, 5}, &fresh_store, &fresh_recipes, sim);
  EXPECT_FALSE(fresh_recipes.contains(1));
  EXPECT_FALSE(fresh_recipes.contains(3));
  EXPECT_TRUE(fresh_recipes.contains(5));
}

TEST(CompactorTest, ReclaimsDeadBytes) {
  Fixture fx;
  Compactor compactor;
  ContainerStore fresh_store;
  RecipeStore fresh_recipes;
  DiskSim sim;
  const CompactionResult r =
      compactor.compact(fx.base().container_store(), fx.base().recipe_store(),
                        {5}, &fresh_store, &fresh_recipes, sim);

  // Five churny generations retained down to one: there must be garbage.
  EXPECT_GT(r.dead_bytes, 0u);
  EXPECT_GT(r.reclaimed_fraction(), 0.0);
  EXPECT_EQ(r.live_bytes, fresh_store.total_data_bytes());
  EXPECT_LE(fresh_store.total_data_bytes(),
            fx.base().container_store().total_data_bytes());
  EXPECT_LE(r.containers_after, r.containers_before);
}

TEST(CompactorTest, CompactionRelinearizesNewestGeneration) {
  Fixture fx;
  const Recipe& old_recipe = fx.base().recipe_store().get(5);
  const RestoreResult before =
      strategy_restore(fx.base().container_store(), old_recipe, nullptr);

  Compactor compactor(fx.base().config().container_bytes);
  ContainerStore fresh_store;
  RecipeStore fresh_recipes;
  DiskSim sim;
  compactor.compact(fx.base().container_store(), fx.base().recipe_store(),
                    {4, 5}, &fresh_store, &fresh_recipes, sim);

  const RestoreResult after =
      strategy_restore(fresh_store, fresh_recipes.get(5), nullptr);
  // Newest-recipe-first copy order makes generation 5 (near-)sequential.
  EXPECT_LE(after.container_loads, before.container_loads);
  EXPECT_LE(fresh_recipes.get(5).container_switches(),
            old_recipe.container_switches());
}

TEST(CompactorTest, ChargesReadsWritesAndSeeks) {
  Fixture fx;
  Compactor compactor;
  ContainerStore fresh_store;
  RecipeStore fresh_recipes;
  DiskSim sim;
  const CompactionResult r =
      compactor.compact(fx.base().container_store(), fx.base().recipe_store(),
                        {5}, &fresh_store, &fresh_recipes, sim);
  EXPECT_GT(r.io.seeks, 0u);
  EXPECT_GE(r.io.bytes_read, r.live_bytes);
  EXPECT_GE(r.io.bytes_written, r.live_bytes);
  EXPECT_GT(r.sim_seconds, 0.0);
}

TEST(CompactorTest, SharedChunksCopiedOnce) {
  // Two retained recipes referencing identical data must not duplicate the
  // chunks in the fresh store.
  DedupSystem sys(EngineKind::kDdfs, testing::small_engine_config());
  const Bytes stream = testing::random_bytes(256 * 1024, 9191);
  sys.ingest_as(1, stream);
  sys.ingest_as(2, stream);
  const auto& base = dynamic_cast<const EngineBase&>(sys.engine());

  Compactor compactor;
  ContainerStore fresh_store;
  RecipeStore fresh_recipes;
  DiskSim sim;
  const CompactionResult r = compactor.compact(
      base.container_store(), base.recipe_store(), {1, 2}, &fresh_store,
      &fresh_recipes, sim);
  EXPECT_EQ(r.live_bytes, stream.size());
}

TEST(CompactorTest, RejectsEmptyRetention) {
  Fixture fx;
  Compactor compactor;
  ContainerStore fresh_store;
  RecipeStore fresh_recipes;
  DiskSim sim;
  EXPECT_THROW(compactor.compact(fx.base().container_store(),
                                 fx.base().recipe_store(), {}, &fresh_store,
                                 &fresh_recipes, sim),
               CheckFailure);
}

}  // namespace
}  // namespace defrag

#include "storage/container_store.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "testing/data.h"

namespace defrag {
namespace {

TEST(ContainerStoreTest, RollsToNewContainerWhenFull) {
  ContainerStore store(128 * 1024);
  DiskSim sim;
  const Bytes chunk = testing::random_bytes(50 * 1024, 50);
  // Three 50 KiB chunks into 128 KiB containers: the third must roll over.
  const auto l1 = store.append(Fingerprint::of(chunk), chunk, 0, sim);
  const auto l2 = store.append(Fingerprint::of(chunk), chunk, 0, sim);
  const auto l3 = store.append(Fingerprint::of(chunk), chunk, 0, sim);
  EXPECT_EQ(l1.container, 0u);
  EXPECT_EQ(l2.container, 0u);
  EXPECT_EQ(l3.container, 1u);
  EXPECT_EQ(store.container_count(), 2u);
  EXPECT_TRUE(store.peek(0).sealed());
  EXPECT_FALSE(store.peek(1).sealed());
}

TEST(ContainerStoreTest, AppendIsWriteBehind) {
  ContainerStore store;
  DiskSim sim;
  const Bytes chunk = testing::random_bytes(4096, 51);
  store.append(Fingerprint::of(chunk), chunk, 0, sim);
  EXPECT_DOUBLE_EQ(sim.elapsed_seconds(), 0.0);
  EXPECT_EQ(sim.stats().bytes_written, 4096 + kContainerEntryBytes);
}

TEST(ContainerStoreTest, LoadChargesSeekAndTransfer) {
  ContainerStore store;
  DiskSim sim;
  const Bytes chunk = testing::random_bytes(4096, 52);
  const auto loc = store.append(Fingerprint::of(chunk), chunk, 0, sim);
  store.flush();

  DiskSim read_sim;
  const Container& c = store.load(loc.container, read_sim);
  EXPECT_EQ(read_sim.stats().seeks, 1u);
  EXPECT_EQ(read_sim.stats().bytes_read, c.data_bytes() + c.metadata_bytes());
  EXPECT_GT(read_sim.elapsed_seconds(), 0.0);
}

TEST(ContainerStoreTest, LoadMetadataChargesOnlyMetadata) {
  ContainerStore store;
  DiskSim sim;
  const Bytes chunk = testing::random_bytes(4096, 53);
  const auto loc = store.append(Fingerprint::of(chunk), chunk, 7, sim);
  store.flush();

  DiskSim meta_sim;
  const auto& entries = store.load_metadata(loc.container, meta_sim);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].segment, 7u);
  EXPECT_EQ(meta_sim.stats().seeks, 1u);
  EXPECT_EQ(meta_sim.stats().bytes_read, kContainerEntryBytes);
}

TEST(ContainerStoreTest, TotalDataBytes) {
  ContainerStore store;
  DiskSim sim;
  std::uint64_t expected = 0;
  for (int i = 0; i < 10; ++i) {
    const Bytes chunk =
        testing::random_bytes(1000 + static_cast<std::size_t>(i), 54 + static_cast<std::uint64_t>(i));
    store.append(Fingerprint::of(chunk), chunk, 0, sim);
    expected += chunk.size();
  }
  EXPECT_EQ(store.total_data_bytes(), expected);
}

TEST(ContainerStoreTest, RejectsOversizedChunk) {
  ContainerStore store(64 * 1024);
  DiskSim sim;
  const Bytes chunk = testing::random_bytes(65 * 1024, 55);
  EXPECT_THROW(store.append(Fingerprint::of(chunk), chunk, 0, sim),
               CheckFailure);
}

TEST(ContainerStoreTest, PeekRejectsUnknownId) {
  ContainerStore store;
  EXPECT_THROW(store.peek(0), CheckFailure);
}

TEST(ContainerStoreTest, OpenContainerTracking) {
  ContainerStore store;
  EXPECT_EQ(store.open_container(), kInvalidContainer);
  DiskSim sim;
  const Bytes chunk = testing::random_bytes(100, 56);
  store.append(Fingerprint::of(chunk), chunk, 0, sim);
  EXPECT_EQ(store.open_container(), 0u);
  store.flush();
  EXPECT_EQ(store.open_container(), kInvalidContainer);
}

}  // namespace
}  // namespace defrag

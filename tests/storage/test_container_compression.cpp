#include <gtest/gtest.h>

#include "core/dedup_system.h"
#include "storage/container_store.h"
#include "testing/data.h"
#include "testing/engine_config.h"
#include "workload/backup_series.h"

namespace defrag {
namespace {

Bytes text_bytes(std::size_t n, std::uint64_t seed) {
  return workload::materialize(std::vector<workload::Extent>{
      workload::Extent{seed, static_cast<std::uint32_t>(n),
                       workload::ExtentKind::kText}});
}

TEST(ContainerCompressionTest, SealShrinksCompressibleContainer) {
  ContainerStore store(256 * 1024, /*compress_on_seal=*/true);
  DiskSim sim;
  const Bytes text = text_bytes(200 * 1024, 400);
  store.append(Fingerprint::of(text), text, 0, sim);
  store.flush();

  const Container& c = store.peek(0);
  EXPECT_TRUE(c.sealed());
  EXPECT_LT(c.stored_bytes(), c.data_bytes());
  EXPECT_GT(c.local_compression(), 2.0);
  EXPECT_LT(store.total_stored_bytes(), store.total_data_bytes());
}

TEST(ContainerCompressionTest, IncompressibleContainerKeepsRawSize) {
  ContainerStore store(256 * 1024, /*compress_on_seal=*/true);
  DiskSim sim;
  const Bytes noise = testing::random_bytes(200 * 1024, 401);
  store.append(Fingerprint::of(noise), noise, 0, sim);
  store.flush();

  const Container& c = store.peek(0);
  EXPECT_EQ(c.stored_bytes(), c.data_bytes());
  EXPECT_DOUBLE_EQ(c.local_compression(), 1.0);
}

TEST(ContainerCompressionTest, LoadChargesCompressedTransfer) {
  ContainerStore store(256 * 1024, /*compress_on_seal=*/true);
  DiskSim sim;
  const Bytes text = text_bytes(200 * 1024, 402);
  const auto loc = store.append(Fingerprint::of(text), text, 0, sim);
  store.flush();

  DiskSim read_sim;
  const Container& c = store.load(loc.container, read_sim);
  EXPECT_EQ(read_sim.stats().bytes_read,
            c.stored_bytes() + c.metadata_bytes());
  EXPECT_LT(read_sim.stats().bytes_read, c.data_bytes());
}

TEST(ContainerCompressionTest, ReadsStillServeRawBytes) {
  ContainerStore store(256 * 1024, /*compress_on_seal=*/true);
  DiskSim sim;
  const Bytes text = text_bytes(100 * 1024, 403);
  const auto loc = store.append(Fingerprint::of(text), text, 0, sim);
  store.flush();
  const ByteView back = store.peek(loc.container).read(loc);
  EXPECT_TRUE(std::equal(back.begin(), back.end(), text.begin()));
}

TEST(ContainerCompressionTest, EndToEndWithTextWorkload) {
  auto cfg = testing::small_engine_config();
  cfg.compress_containers = true;
  DedupSystem sys(EngineKind::kDefrag, cfg);

  workload::FsParams fs;
  fs.initial_files = 12;
  fs.mean_file_bytes = 64 * 1024;
  fs.text_fraction = 0.7;
  workload::SingleUserSeries series(404, fs);

  const workload::Backup b1 = series.next();
  sys.ingest_as(1, b1.stream);
  const workload::Backup b2 = series.next();
  sys.ingest_as(2, b2.stream);

  const auto& base = dynamic_cast<const EngineBase&>(sys.engine());
  // Dedup removed the cross-generation redundancy; local compression must
  // shrink the mostly-text residue further.
  EXPECT_LT(base.stored_physical_bytes(), base.stored_data_bytes());

  // And restores remain lossless.
  EXPECT_EQ(sys.restore_bytes(1), b1.stream);
  EXPECT_EQ(sys.restore_bytes(2), b2.stream);
}

TEST(ContainerCompressionTest, TextWorkloadDeterministic) {
  workload::FsParams fs;
  fs.initial_files = 8;
  fs.text_fraction = 0.5;
  workload::FileSystemModel a(42, fs), b(42, fs);
  a.mutate();
  b.mutate();
  EXPECT_EQ(a.materialize_stream(), b.materialize_stream());
}

}  // namespace
}  // namespace defrag

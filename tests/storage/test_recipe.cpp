#include "storage/recipe.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "testing/data.h"

namespace defrag {
namespace {

Fingerprint fp(std::uint8_t tag) {
  Bytes b{tag};
  return Fingerprint::of(b);
}

TEST(RecipeTest, TracksEntriesAndBytes) {
  Recipe r("gen1");
  r.add(fp(1), ChunkLocation{0, 0, 100});
  r.add(fp(2), ChunkLocation{0, 100, 200});
  EXPECT_EQ(r.entries().size(), 2u);
  EXPECT_EQ(r.logical_bytes(), 300u);
  EXPECT_EQ(r.label(), "gen1");
}

TEST(RecipeTest, DistinctContainersCountsUnique) {
  Recipe r;
  r.add(fp(1), ChunkLocation{0, 0, 10});
  r.add(fp(2), ChunkLocation{1, 0, 10});
  r.add(fp(3), ChunkLocation{0, 10, 10});
  EXPECT_EQ(r.distinct_containers(), 2u);
}

TEST(RecipeTest, ContainerSwitchesCountsTransitions) {
  Recipe r;
  // Pattern 0,0,1,0,1 -> switches at start, 0->1, 1->0, 0->1 = 4.
  r.add(fp(1), ChunkLocation{0, 0, 10});
  r.add(fp(2), ChunkLocation{0, 10, 10});
  r.add(fp(3), ChunkLocation{1, 0, 10});
  r.add(fp(4), ChunkLocation{0, 20, 10});
  r.add(fp(5), ChunkLocation{1, 10, 10});
  EXPECT_EQ(r.container_switches(), 4u);
}

TEST(RecipeTest, EmptyRecipe) {
  Recipe r;
  EXPECT_EQ(r.distinct_containers(), 0u);
  EXPECT_EQ(r.container_switches(), 0u);
  EXPECT_EQ(r.logical_bytes(), 0u);
}

TEST(RecipeStoreTest, CreateAndGet) {
  RecipeStore store;
  Recipe& r = store.create(1, "first");
  r.add(fp(1), ChunkLocation{0, 0, 10});
  EXPECT_TRUE(store.contains(1));
  EXPECT_FALSE(store.contains(2));
  EXPECT_EQ(store.get(1).logical_bytes(), 10u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(RecipeStoreTest, DuplicateGenerationRejected) {
  RecipeStore store;
  store.create(1, "a");
  EXPECT_THROW(store.create(1, "b"), CheckFailure);
}

TEST(RecipeStoreTest, UnknownGenerationRejected) {
  RecipeStore store;
  EXPECT_THROW(store.get(42), CheckFailure);
}

}  // namespace
}  // namespace defrag

// Compaction time model: offline GC's copies block (read + write), unlike
// the engines' write-behind ingest appends.
#include <gtest/gtest.h>

#include "core/dedup_system.h"
#include "storage/compactor.h"
#include "testing/data.h"
#include "testing/engine_config.h"

namespace defrag {
namespace {

TEST(CompactorTimingTest, SweepPaysReadAndWriteTime) {
  DedupSystem sys(EngineKind::kDdfs, testing::small_engine_config());
  const Bytes stream = testing::random_bytes(512 * 1024, 950);
  sys.ingest_as(1, stream);
  const auto& base = dynamic_cast<const EngineBase&>(sys.engine());

  Compactor compactor;
  ContainerStore fresh_store;
  RecipeStore fresh_recipes;
  const DiskModel disk{};
  DiskSim sim(disk);
  const CompactionResult r = compactor.compact(
      base.container_store(), base.recipe_store(), {1}, &fresh_store,
      &fresh_recipes, sim);

  // Lower bound: every live byte is read once AND written once, plus one
  // seek per source container.
  const double floor = disk.read_seconds(r.live_bytes) +
                       disk.write_seconds(r.live_bytes) +
                       static_cast<double>(r.io.seeks) * disk.seek_seconds;
  EXPECT_GE(r.sim_seconds + 1e-9, floor);
}

TEST(CompactorTimingTest, CompactionCostScalesWithLiveBytes) {
  double small_cost = 0.0, large_cost = 0.0;
  for (int scale : {1, 4}) {
    DedupSystem sys(EngineKind::kDdfs, testing::small_engine_config());
    const Bytes stream = testing::random_bytes(
        static_cast<std::size_t>(scale) * 256 * 1024, 951);
    sys.ingest_as(1, stream);
    const auto& base = dynamic_cast<const EngineBase&>(sys.engine());

    Compactor compactor;
    ContainerStore fresh_store;
    RecipeStore fresh_recipes;
    DiskSim sim;
    const CompactionResult r = compactor.compact(
        base.container_store(), base.recipe_store(), {1}, &fresh_store,
        &fresh_recipes, sim);
    (scale == 1 ? small_cost : large_cost) = r.sim_seconds;
  }
  EXPECT_GT(large_cost, 2.0 * small_cost);
}

}  // namespace
}  // namespace defrag

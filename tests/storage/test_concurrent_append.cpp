#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "storage/container_store.h"
#include "testing/data.h"

namespace defrag {
namespace {

constexpr std::uint64_t kSmallContainer = 64 * 1024;  // store minimum

Bytes chunk_data(std::uint64_t stream, std::uint64_t i, std::size_t n) {
  return testing::random_bytes(n, stream * 100000 + i);
}

TEST(ConcurrentAppendTest, SerialPathDisabledInStreamMode) {
  ContainerStore store(kSmallContainer);
  DiskSim sim;
  auto appender = store.open_stream();
  const Bytes data = chunk_data(0, 0, 1024);
  EXPECT_THROW(store.append(Fingerprint::of(data), data, kInvalidSegment, sim),
               CheckFailure);
  EXPECT_THROW(store.flush(), CheckFailure);
  EXPECT_EQ(store.open_container(), kInvalidContainer);
  appender.close();
}

TEST(ConcurrentAppendTest, OpenStreamSealsSerialTail) {
  ContainerStore store(kSmallContainer);
  DiskSim sim;
  const Bytes data = chunk_data(0, 0, 1024);
  store.append(Fingerprint::of(data), data, kInvalidSegment, sim);
  ASSERT_NE(store.open_container(), kInvalidContainer);
  auto appender = store.open_stream();
  EXPECT_TRUE(store.peek(0).sealed());
  appender.close();
}

TEST(ConcurrentAppendTest, AppenderWritesReadBackAndSealOnClose) {
  ContainerStore store(kSmallContainer);
  DiskSim sim;
  auto appender = store.open_stream();

  std::vector<std::pair<ChunkLocation, Bytes>> written;
  for (std::uint64_t i = 0; i < 8; ++i) {
    Bytes data = chunk_data(1, i, 4096);
    const ChunkLocation loc =
        appender.append(Fingerprint::of(data), data, kInvalidSegment, sim);
    ASSERT_TRUE(loc.valid());
    written.emplace_back(loc, std::move(data));
  }
  appender.close();

  for (const auto& [loc, data] : written) {
    const Container& c = store.peek(loc.container);
    EXPECT_TRUE(c.sealed());
    const ByteView read = c.read(loc);
    EXPECT_TRUE(std::equal(read.begin(), read.end(), data.begin(), data.end()));
  }
  EXPECT_EQ(store.total_data_bytes(), 8u * 4096u);
}

TEST(ConcurrentAppendTest, AppenderRollsAndPlacesSequentially) {
  ContainerStore store(kSmallContainer);
  DiskSim sim;
  auto appender = store.open_stream();

  // 24 x 8 KiB = 192 KiB through 64 KiB containers: at least 3 containers.
  std::vector<ChunkLocation> locs;
  for (std::uint64_t i = 0; i < 24; ++i) {
    const Bytes data = chunk_data(2, i, 8192);
    locs.push_back(
        appender.append(Fingerprint::of(data), data, kInvalidSegment, sim));
  }
  appender.close();
  EXPECT_GE(store.container_count(), 3u);

  // Sequential placement: within each container, offsets grow in append
  // order with no holes.
  for (std::size_t i = 1; i < locs.size(); ++i) {
    if (locs[i].container == locs[i - 1].container) {
      EXPECT_EQ(locs[i].offset, locs[i - 1].offset + locs[i - 1].size);
    } else {
      EXPECT_EQ(locs[i].offset, 0u);
    }
  }
}

TEST(ConcurrentAppendTest, CloseIsIdempotentAndAppendAfterCloseThrows) {
  ContainerStore store(kSmallContainer);
  DiskSim sim;
  auto appender = store.open_stream();
  const Bytes data = chunk_data(3, 0, 1024);
  appender.append(Fingerprint::of(data), data, kInvalidSegment, sim);
  appender.close();
  appender.close();
  EXPECT_THROW(
      appender.append(Fingerprint::of(data), data, kInvalidSegment, sim),
      CheckFailure);
}

// N streams appending concurrently into one store. Each stream tags its
// chunks with its own SegmentId, so afterwards we can assert the paper's
// placement invariant: every container holds chunks of exactly one stream,
// back-to-back in that stream's order. Run under TSan in the sanitize CI
// matrix, this is the data-race gate for concurrent appends.
TEST(ConcurrentAppendTest, ParallelStreamsStaySequentialPerContainer) {
  constexpr std::size_t kStreams = 4;
  constexpr std::uint64_t kChunksPerStream = 48;

  ContainerStore store(kSmallContainer);
  std::vector<std::vector<ChunkLocation>> locs(kStreams);

  std::vector<std::thread> threads;
  threads.reserve(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    threads.emplace_back([&, s] {
      DiskSim sim;
      auto appender = store.open_stream();
      for (std::uint64_t i = 0; i < kChunksPerStream; ++i) {
        const Bytes data = chunk_data(s, i, 4096 + 512 * (i % 5));
        locs[s].push_back(appender.append(Fingerprint::of(data), data,
                                          /*segment=*/s, sim));
      }
      appender.close();
    });
  }
  for (auto& th : threads) th.join();

  // Every location is valid and no two chunks share (container, offset).
  std::set<std::pair<ContainerId, std::uint32_t>> placements;
  for (const auto& stream_locs : locs) {
    for (const ChunkLocation& loc : stream_locs) {
      ASSERT_TRUE(loc.valid());
      EXPECT_TRUE(placements.emplace(loc.container, loc.offset).second);
    }
  }

  // One stream per container, and within it the stream's own order.
  std::map<ContainerId, std::size_t> container_owner;
  for (std::size_t s = 0; s < kStreams; ++s) {
    for (std::size_t i = 0; i < locs[s].size(); ++i) {
      const ChunkLocation& loc = locs[s][i];
      const auto it = container_owner.emplace(loc.container, s).first;
      EXPECT_EQ(it->second, s) << "container shared by two streams";
      if (i > 0 && locs[s][i - 1].container == loc.container) {
        EXPECT_EQ(loc.offset,
                  locs[s][i - 1].offset + locs[s][i - 1].size);
      }
    }
  }
  for (ContainerId id = 0; id < store.container_count(); ++id) {
    const Container& c = store.peek(id);
    EXPECT_TRUE(c.sealed());
    for (const ContainerEntry& e : c.entries()) {
      EXPECT_EQ(e.segment, container_owner.at(id));
    }
  }

  // Read-back across all streams, and quiescent accounting adds up.
  std::uint64_t expected_bytes = 0;
  for (std::size_t s = 0; s < kStreams; ++s) {
    for (std::uint64_t i = 0; i < kChunksPerStream; ++i) {
      const Bytes data = chunk_data(s, i, 4096 + 512 * (i % 5));
      const ByteView read = store.peek(locs[s][i].container).read(locs[s][i]);
      ASSERT_TRUE(
          std::equal(read.begin(), read.end(), data.begin(), data.end()));
      expected_bytes += data.size();
    }
  }
  EXPECT_EQ(store.total_data_bytes(), expected_bytes);
}

// Store-side seal publication (the concurrent-restore barrier used by
// defrag-serve): a container is "visible" only once its seal has been
// published under the store lock, which happens no later than appender
// close().
TEST(ConcurrentAppendTest, SealPublicationTracksAppenderLifecycle) {
  ContainerStore store(kSmallContainer);
  DiskSim sim;
  auto appender = store.open_stream();
  const Bytes data = chunk_data(5, 0, 4096);
  const ChunkLocation loc =
      appender.append(Fingerprint::of(data), data, kInvalidSegment, sim);
  ASSERT_TRUE(loc.valid());
  EXPECT_FALSE(store.sealed_visible(loc.container));
  appender.close();
  EXPECT_TRUE(store.sealed_visible(loc.container));
  store.wait_sealed(loc.container);  // already published: returns at once
  const Container& c = store.load_sealed(loc.container, sim);
  const ByteView read = c.read(loc);
  EXPECT_TRUE(std::equal(read.begin(), read.end(), data.begin(), data.end()));
}

// Rolling to a fresh container publishes the full one's seal immediately —
// a reader must not have to wait for the whole stream to finish.
TEST(ConcurrentAppendTest, RolledContainerIsVisibleBeforeClose) {
  ContainerStore store(kSmallContainer);
  DiskSim sim;
  auto appender = store.open_stream();
  ChunkLocation first;
  ChunkLocation last;
  for (std::uint64_t i = 0; i < 24; ++i) {  // 192 KiB: rolls at least twice
    const Bytes data = chunk_data(6, i, 8192);
    last = appender.append(Fingerprint::of(data), data, kInvalidSegment, sim);
    if (i == 0) first = last;
  }
  ASSERT_NE(first.container, last.container);
  EXPECT_TRUE(store.sealed_visible(first.container));
  EXPECT_FALSE(store.sealed_visible(last.container));
  appender.close();
  EXPECT_TRUE(store.sealed_visible(last.container));
}

TEST(ConcurrentAppendTest, WaitSealedBlocksUntilPublication) {
  ContainerStore store(kSmallContainer);
  DiskSim sim;
  auto appender = store.open_stream();
  const Bytes data = chunk_data(7, 0, 4096);
  const ChunkLocation loc =
      appender.append(Fingerprint::of(data), data, kInvalidSegment, sim);

  std::atomic<bool> read_ok{false};
  std::thread reader([&store, &read_ok, loc, &data] {
    store.wait_sealed(loc.container);
    DiskSim reader_sim;
    const Container& c = store.load_sealed(loc.container, reader_sim);
    const ByteView read = c.read(loc);
    read_ok.store(
        std::equal(read.begin(), read.end(), data.begin(), data.end()));
  });
  // The reader can only proceed once this close publishes the seal; the
  // happens-before edge is exactly what TSan verifies here.
  appender.close();
  reader.join();
  EXPECT_TRUE(read_ok.load());
}

}  // namespace
}  // namespace defrag

#include "storage/container.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "testing/data.h"

namespace defrag {
namespace {

Fingerprint fp_of(const Bytes& b) { return Fingerprint::of(b); }

TEST(ContainerTest, AppendAndReadBack) {
  Container c(0, 1 << 20);
  const Bytes data = testing::random_bytes(1000, 40);
  const ChunkLocation loc = c.append(fp_of(data), data, 7);

  EXPECT_EQ(loc.container, 0u);
  EXPECT_EQ(loc.offset, 0u);
  EXPECT_EQ(loc.size, 1000u);

  const ByteView back = c.read(loc);
  EXPECT_TRUE(std::equal(back.begin(), back.end(), data.begin()));
}

TEST(ContainerTest, SequentialOffsets) {
  Container c(1, 1 << 20);
  const Bytes a = testing::random_bytes(100, 41);
  const Bytes b = testing::random_bytes(200, 42);
  const auto la = c.append(fp_of(a), a, 0);
  const auto lb = c.append(fp_of(b), b, 0);
  EXPECT_EQ(la.offset, 0u);
  EXPECT_EQ(lb.offset, 100u);
  EXPECT_EQ(c.data_bytes(), 300u);
}

TEST(ContainerTest, EntriesRecordMetadata) {
  Container c(2, 1 << 20);
  const Bytes data = testing::random_bytes(50, 43);
  c.append(fp_of(data), data, 99);
  ASSERT_EQ(c.entries().size(), 1u);
  EXPECT_EQ(c.entries()[0].fp, fp_of(data));
  EXPECT_EQ(c.entries()[0].segment, 99u);
  EXPECT_EQ(c.metadata_bytes(), kContainerEntryBytes);
}

TEST(ContainerTest, FitsRespectsCapacity) {
  Container c(3, 1000);
  EXPECT_TRUE(c.fits(1000));
  EXPECT_FALSE(c.fits(1001));
  const Bytes data = testing::random_bytes(600, 44);
  c.append(fp_of(data), data, 0);
  EXPECT_TRUE(c.fits(400));
  EXPECT_FALSE(c.fits(401));
}

TEST(ContainerTest, SealPreventsAppend) {
  Container c(4, 1000);
  c.seal();
  EXPECT_FALSE(c.fits(1));
  const Bytes data = testing::random_bytes(10, 45);
  EXPECT_THROW(c.append(fp_of(data), data, 0), CheckFailure);
}

TEST(ContainerTest, ReadRejectsWrongContainer) {
  Container c(5, 1000);
  const Bytes data = testing::random_bytes(10, 46);
  auto loc = c.append(fp_of(data), data, 0);
  loc.container = 6;
  EXPECT_THROW(c.read(loc), CheckFailure);
}

TEST(ContainerTest, ReadRejectsOutOfBounds) {
  Container c(7, 1000);
  const Bytes data = testing::random_bytes(10, 47);
  auto loc = c.append(fp_of(data), data, 0);
  loc.size = 100;
  EXPECT_THROW(c.read(loc), CheckFailure);
}

TEST(ChunkLocationTest, ValidityAndEquality) {
  ChunkLocation invalid;
  EXPECT_FALSE(invalid.valid());
  ChunkLocation valid{3, 0, 10};
  EXPECT_TRUE(valid.valid());
  EXPECT_EQ(valid, (ChunkLocation{3, 0, 10}));
  EXPECT_NE(valid, invalid);
}

}  // namespace
}  // namespace defrag

#include "storage/lru_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace defrag {
namespace {

TEST(LruCacheTest, BasicPutGet) {
  LruCache<int, std::string> c(2);
  c.put(1, "one");
  ASSERT_NE(c.get(1), nullptr);
  EXPECT_EQ(*c.get(1), "one");
  EXPECT_EQ(c.get(2), nullptr);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  ASSERT_NE(c.get(1), nullptr);  // 1 is now most recent
  c.put(3, 30);                  // evicts 2
  EXPECT_EQ(c.get(2), nullptr);
  EXPECT_NE(c.get(1), nullptr);
  EXPECT_NE(c.get(3), nullptr);
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(LruCacheTest, PutRefreshesRecency) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  c.put(1, 11);  // overwrite refreshes
  c.put(3, 30);  // evicts 2, not 1
  EXPECT_NE(c.get(1), nullptr);
  EXPECT_EQ(*c.get(1), 11);
  EXPECT_EQ(c.get(2), nullptr);
}

TEST(LruCacheTest, PeekDoesNotTouchRecency) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  (void)c.peek(1);  // must NOT refresh 1
  c.put(3, 30);     // evicts 1 (still LRU)
  EXPECT_EQ(c.get(1), nullptr);
}

TEST(LruCacheTest, EraseRemovesEntry) {
  LruCache<int, int> c(4);
  c.put(1, 10);
  c.erase(1);
  EXPECT_EQ(c.get(1), nullptr);
  EXPECT_EQ(c.size(), 0u);
  c.erase(99);  // erasing a missing key is a no-op
}

TEST(LruCacheTest, HitRateTracksLookups) {
  LruCache<int, int> c(4);
  c.put(1, 10);
  (void)c.get(1);  // hit
  (void)c.get(2);  // miss
  (void)c.get(1);  // hit
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_NEAR(c.hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(LruCacheTest, CapacityOneWorks) {
  LruCache<int, int> c(1);
  c.put(1, 10);
  c.put(2, 20);
  EXPECT_EQ(c.get(1), nullptr);
  EXPECT_NE(c.get(2), nullptr);
}

TEST(LruCacheTest, RejectsZeroCapacity) {
  EXPECT_THROW((LruCache<int, int>(0)), CheckFailure);
}

TEST(LruCacheTest, ClearEmptiesCache) {
  LruCache<int, int> c(4);
  c.put(1, 1);
  c.put(2, 2);
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.get(1), nullptr);
}

TEST(LruCacheTest, ClearResetsStatistics) {
  // A cleared cache is a fresh cache: stale hit/miss/eviction totals would
  // corrupt every rate computed after reuse.
  LruCache<int, int> c(2);
  c.put(1, 1);
  c.put(2, 2);
  c.put(3, 3);              // eviction
  EXPECT_NE(c.get(3), nullptr);  // hit
  EXPECT_EQ(c.get(99), nullptr);  // miss (and the failed get(1) above: none)
  EXPECT_GT(c.evictions(), 0u);
  c.clear();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_EQ(c.evictions(), 0u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.0);
}

TEST(LruCacheTest, ResetStatsKeepsContents) {
  LruCache<int, int> c(2);
  c.put(1, 10);
  EXPECT_NE(c.get(1), nullptr);
  c.reset_stats();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_NE(c.get(1), nullptr);
}

TEST(LruCacheTest, StressManyInsertionsStaysBounded) {
  LruCache<int, int> c(16);
  for (int i = 0; i < 10000; ++i) c.put(i, i);
  EXPECT_EQ(c.size(), 16u);
  // The last 16 keys must all be present.
  for (int i = 10000 - 16; i < 10000; ++i) EXPECT_NE(c.get(i), nullptr);
}

}  // namespace
}  // namespace defrag

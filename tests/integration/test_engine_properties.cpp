// Engine-generic property suite: invariants every engine kind must satisfy
// on every workload (DESIGN.md §6), run as a (engine x workload) matrix.
#include <gtest/gtest.h>

#include <tuple>

#include "core/dedup_system.h"
#include "testing/engine_config.h"
#include "workload/backup_series.h"

namespace defrag {
namespace {

using Param = std::tuple<EngineKind, std::uint64_t /*workload seed*/>;

class EnginePropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  static workload::FsParams fs() {
    workload::FsParams p;
    p.initial_files = 10;
    p.mean_file_bytes = 48 * 1024;
    p.mutation.file_modify_prob = 0.4;
    return p;
  }
};

TEST_P(EnginePropertyTest, AccountingHoldsEveryGeneration) {
  DedupSystem sys(std::get<0>(GetParam()), testing::small_engine_config());
  workload::SingleUserSeries series(std::get<1>(GetParam()), fs());
  for (std::uint32_t g = 1; g <= 5; ++g) {
    const BackupResult r = sys.ingest_as(g, series.next().stream);
    testing::expect_accounting_consistent(r);
    EXPECT_GT(r.sim_seconds, 0.0);
    EXPECT_LE(r.dedup_efficiency(), 1.0 + 1e-12);
  }
  // Physical store equals the sum of per-generation stored bytes.
  std::uint64_t stored = 0;
  for (const auto& r : sys.history()) stored += r.stored_bytes();
  const auto& base = dynamic_cast<const EngineBase&>(sys.engine());
  EXPECT_EQ(base.stored_data_bytes(), stored);
}

TEST_P(EnginePropertyTest, IdenticalSystemsProduceIdenticalResults) {
  // Engines are deterministic: same config + same stream sequence => same
  // metrics, bit for bit.
  DedupSystem a(std::get<0>(GetParam()), testing::small_engine_config());
  DedupSystem b(std::get<0>(GetParam()), testing::small_engine_config());
  workload::SingleUserSeries sa(std::get<1>(GetParam()), fs());
  workload::SingleUserSeries sb(std::get<1>(GetParam()), fs());
  for (std::uint32_t g = 1; g <= 3; ++g) {
    const BackupResult ra = a.ingest_as(g, sa.next().stream);
    const BackupResult rb = b.ingest_as(g, sb.next().stream);
    EXPECT_EQ(ra.unique_bytes, rb.unique_bytes);
    EXPECT_EQ(ra.removed_bytes, rb.removed_bytes);
    EXPECT_EQ(ra.rewritten_bytes, rb.rewritten_bytes);
    EXPECT_EQ(ra.missed_dup_bytes, rb.missed_dup_bytes);
    EXPECT_EQ(ra.io.seeks, rb.io.seeks);
    EXPECT_DOUBLE_EQ(ra.sim_seconds, rb.sim_seconds);
  }
}

TEST_P(EnginePropertyTest, RecipeBytesMatchStreams) {
  DedupSystem sys(std::get<0>(GetParam()), testing::small_engine_config());
  workload::SingleUserSeries series(std::get<1>(GetParam()), fs());
  std::vector<std::uint64_t> sizes;
  for (std::uint32_t g = 1; g <= 3; ++g) {
    const auto b = series.next();
    sizes.push_back(b.stream.size());
    sys.ingest_as(g, b.stream);
  }
  const auto& base = dynamic_cast<const EngineBase&>(sys.engine());
  for (std::uint32_t g = 1; g <= 3; ++g) {
    EXPECT_EQ(base.recipe_store().get(g).logical_bytes(), sizes[g - 1]);
  }
}

TEST_P(EnginePropertyTest, ParallelFingerprintingChangesNothing) {
  // EngineConfig::fingerprint_threads accelerates wall-clock only; every
  // metric and the stored bytes must be bit-identical to the sync path.
  auto sync_cfg = testing::small_engine_config();
  auto par_cfg = sync_cfg;
  par_cfg.fingerprint_threads = 3;

  DedupSystem sync_sys(std::get<0>(GetParam()), sync_cfg);
  DedupSystem par_sys(std::get<0>(GetParam()), par_cfg);
  workload::SingleUserSeries sa(std::get<1>(GetParam()), fs());
  workload::SingleUserSeries sb(std::get<1>(GetParam()), fs());
  for (std::uint32_t g = 1; g <= 2; ++g) {
    const BackupResult rs = sync_sys.ingest_as(g, sa.next().stream);
    const BackupResult rp = par_sys.ingest_as(g, sb.next().stream);
    EXPECT_EQ(rs.unique_bytes, rp.unique_bytes);
    EXPECT_EQ(rs.removed_bytes, rp.removed_bytes);
    EXPECT_EQ(rs.io.seeks, rp.io.seeks);
    EXPECT_EQ(sync_sys.restore_bytes(g), par_sys.restore_bytes(g));
  }
}

TEST_P(EnginePropertyTest, SeeksAreTheOnlySourceOfSeekTime) {
  DedupSystem sys(std::get<0>(GetParam()), testing::small_engine_config());
  workload::SingleUserSeries series(std::get<1>(GetParam()), fs());
  for (std::uint32_t g = 1; g <= 3; ++g) {
    const BackupResult r = sys.ingest_as(g, series.next().stream);
    const auto& cfg = testing::small_engine_config();
    const double floor =
        static_cast<double>(r.logical_bytes) / 1e6 / cfg.cpu_mb_per_s +
        static_cast<double>(r.io.seeks) * cfg.disk.seek_seconds;
    EXPECT_GE(r.sim_seconds + 1e-9, floor);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EngineMatrix, EnginePropertyTest,
    ::testing::Combine(::testing::Values(EngineKind::kDdfs, EngineKind::kSilo,
                                         EngineKind::kSparse,
                                         EngineKind::kDefrag,
                                         EngineKind::kCbr),
                       ::testing::Values(std::uint64_t{11}, std::uint64_t{22})),
    [](const ::testing::TestParamInfo<Param>& tpi) {
      std::string name = to_string(std::get<0>(tpi.param));
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(tpi.param));
    });

}  // namespace
}  // namespace defrag

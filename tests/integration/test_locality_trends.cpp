// The paper's central empirical claims, verified as trends at test scale:
//  - de-linearization grows with generations (fragments per recipe rise),
//  - DDFS throughput decays with generations (Fig. 2's shape),
//  - DeFrag keeps recipes less fragmented than DDFS (Fig. 6's cause).
#include <gtest/gtest.h>

#include <numeric>

#include "core/dedup_system.h"
#include "testing/engine_config.h"
#include "workload/backup_series.h"

namespace defrag {
namespace {

workload::FsParams churny_fs() {
  workload::FsParams p;
  p.initial_files = 24;
  p.mean_file_bytes = 64 * 1024;
  p.mean_extent_bytes = 8 * 1024;
  p.mutation.file_modify_prob = 0.5;  // brisk churn to speed up the trend
  return p;
}

double mean(const std::vector<double>& v, std::size_t from, std::size_t to) {
  return std::accumulate(v.begin() + static_cast<std::ptrdiff_t>(from),
                         v.begin() + static_cast<std::ptrdiff_t>(to), 0.0) /
         static_cast<double>(to - from);
}

TEST(LocalityTrendsTest, FragmentationGrowsWithGenerations) {
  DedupSystem sys(EngineKind::kDdfs, testing::small_engine_config());
  workload::SingleUserSeries series(808, churny_fs());

  std::vector<double> switches_per_mb;
  constexpr std::uint32_t kGens = 10;
  for (std::uint32_t g = 1; g <= kGens; ++g) {
    sys.ingest_as(g, series.next().stream);
    const auto* base = dynamic_cast<const EngineBase*>(&sys.engine());
    const Recipe& r = base->recipe_store().get(g);
    switches_per_mb.push_back(
        static_cast<double>(r.container_switches()) /
        (static_cast<double>(r.logical_bytes()) / 1e6));
  }
  // Later generations must be visibly more fragmented than early ones.
  EXPECT_GT(mean(switches_per_mb, kGens - 3, kGens),
            mean(switches_per_mb, 1, 4));
}

TEST(LocalityTrendsTest, DdfsThroughputDecays) {
  DedupSystem sys(EngineKind::kDdfs, testing::small_engine_config());
  workload::SingleUserSeries series(809, churny_fs());

  std::vector<double> throughput;
  constexpr std::uint32_t kGens = 10;
  for (std::uint32_t g = 1; g <= kGens; ++g) {
    throughput.push_back(sys.ingest_as(g, series.next().stream).throughput_mb_s());
  }
  // Fig. 2's shape: later generations slower than the first ones. Skip
  // generation 1 (all-unique, no lookups at all).
  EXPECT_LT(mean(throughput, kGens - 3, kGens), mean(throughput, 1, 4));
}

TEST(LocalityTrendsTest, DefragRestoresWithFewerContainerLoads) {
  // Note the metric: what a restore *pays* is container loads through the
  // LRU read cache, not the raw distinct-container count (DeFrag's rewrites
  // grow the store, but concentrate each recipe's walk into cacheable
  // ping-pong between few containers).
  auto cfg = testing::small_engine_config();
  cfg.defrag_alpha = 0.2;
  DedupSystem ddfs(EngineKind::kDdfs, cfg);
  DedupSystem defrag(EngineKind::kDefrag, cfg);
  workload::SingleUserSeries s1(810, churny_fs());
  workload::SingleUserSeries s2(810, churny_fs());

  constexpr std::uint32_t kGens = 8;
  for (std::uint32_t g = 1; g <= kGens; ++g) {
    ddfs.ingest_as(g, s1.next().stream);
    defrag.ingest_as(g, s2.next().stream);
  }
  const RestoreResult d = ddfs.restore(kGens);
  const RestoreResult f = defrag.restore(kGens);
  EXPECT_LT(f.container_loads, d.container_loads);
  EXPECT_GT(f.read_mb_s(), d.read_mb_s());
}

TEST(LocalityTrendsTest, DefragThroughputBeatsDdfsUnderChurn) {
  // Paper Fig. 4's shape appears once DDFS's duplicate-container working
  // set no longer fits the locality cache (the RAM-starved regime of the
  // paper); pin the cache small so the cliff arrives within the test run.
  auto cfg = testing::small_engine_config();
  cfg.defrag_alpha = 0.2;
  cfg.metadata_cache_containers = 3;
  DedupSystem ddfs(EngineKind::kDdfs, cfg);
  DedupSystem defrag(EngineKind::kDefrag, cfg);
  workload::SingleUserSeries s1(811, churny_fs());
  workload::SingleUserSeries s2(811, churny_fs());

  constexpr std::uint32_t kGens = 14;
  std::vector<double> d_tp, f_tp;
  for (std::uint32_t g = 1; g <= kGens; ++g) {
    d_tp.push_back(ddfs.ingest_as(g, s1.next().stream).throughput_mb_s());
    f_tp.push_back(defrag.ingest_as(g, s2.next().stream).throughput_mb_s());
  }
  // In the later, fragmented generations DeFrag's throughput exceeds DDFS's.
  EXPECT_GT(mean(f_tp, kGens - 4, kGens), mean(d_tp, kGens - 4, kGens));
}

TEST(LocalityTrendsTest, AlphaControlsTheTradeoff) {
  // Larger alpha => more rewriting => less compression but cheaper restores
  // (fewer container loads through the read cache).
  workload::FsParams fs = churny_fs();
  std::vector<double> alphas = {0.0, 0.3, 1.2};
  std::vector<double> compression, restore_loads;
  for (double alpha : alphas) {
    auto cfg = testing::small_engine_config();
    cfg.defrag_alpha = alpha;
    DedupSystem sys(EngineKind::kDefrag, cfg);
    workload::SingleUserSeries series(812, fs);
    constexpr std::uint32_t kGens = 6;
    for (std::uint32_t g = 1; g <= kGens; ++g) {
      sys.ingest_as(g, series.next().stream);
    }
    compression.push_back(sys.compression_ratio());
    restore_loads.push_back(
        static_cast<double>(sys.restore(kGens).container_loads));
  }
  EXPECT_GE(compression[0], compression[1]);
  EXPECT_GE(compression[1], compression[2]);
  EXPECT_GE(restore_loads[0], restore_loads[1]);
  EXPECT_GE(restore_loads[1], restore_loads[2]);
}

}  // namespace
}  // namespace defrag

// Cross-engine end-to-end behaviour on the same evolving workload: the
// relationships the paper's evaluation relies on, at unit-test scale.
#include <gtest/gtest.h>

#include "core/dedup_system.h"
#include "testing/engine_config.h"
#include "workload/backup_series.h"

namespace defrag {
namespace {

workload::FsParams tiny_fs() {
  workload::FsParams p;
  p.initial_files = 16;
  p.mean_file_bytes = 64 * 1024;
  p.mean_extent_bytes = 8 * 1024;
  return p;
}

struct EngineRun {
  std::vector<BackupResult> backups;
  std::vector<RestoreResult> restores;
  double compression = 0.0;
};

EngineRun run_engine(EngineKind kind, std::uint32_t generations,
               double alpha = 0.1) {
  auto cfg = testing::small_engine_config();
  cfg.defrag_alpha = alpha;
  DedupSystem sys(kind, cfg);
  workload::SingleUserSeries series(31337, tiny_fs());

  EngineRun out;
  for (std::uint32_t g = 1; g <= generations; ++g) {
    out.backups.push_back(sys.ingest_as(g, series.next().stream));
  }
  for (std::uint32_t g = 1; g <= generations; ++g) {
    out.restores.push_back(sys.restore(g));
  }
  out.compression = sys.compression_ratio();
  return out;
}

TEST(EndToEndTest, AllEnginesAgreeOnGroundTruthRedundancy) {
  const EngineRun ddfs = run_engine(EngineKind::kDdfs, 4);
  const EngineRun silo = run_engine(EngineKind::kSilo, 4);
  const EngineRun defrag = run_engine(EngineKind::kDefrag, 4);
  for (std::size_t g = 0; g < 4; ++g) {
    // Ground truth is engine-independent: same workload, same chunker.
    EXPECT_EQ(ddfs.backups[g].redundant_bytes, silo.backups[g].redundant_bytes);
    EXPECT_EQ(ddfs.backups[g].redundant_bytes,
              defrag.backups[g].redundant_bytes);
    EXPECT_EQ(ddfs.backups[g].chunk_count, defrag.backups[g].chunk_count);
  }
}

TEST(EndToEndTest, ExactDedupCompressesBest) {
  const EngineRun ddfs = run_engine(EngineKind::kDdfs, 5);
  const EngineRun silo = run_engine(EngineKind::kSilo, 5);
  const EngineRun defrag = run_engine(EngineKind::kDefrag, 5);
  EXPECT_GE(ddfs.compression, defrag.compression);
  EXPECT_GE(ddfs.compression, silo.compression);
}

TEST(EndToEndTest, DefragEfficiencyBeatsOrMatchesSilo) {
  // Paper Fig. 5's claim at test scale: DeFrag keeps less redundant data
  // than SiLo misses+keeps, cumulatively.
  const EngineRun silo = run_engine(EngineKind::kSilo, 6);
  const EngineRun defrag = run_engine(EngineKind::kDefrag, 6);

  std::uint64_t silo_kept = 0, defrag_kept = 0, redundant = 0;
  for (std::size_t g = 0; g < 6; ++g) {
    silo_kept += silo.backups[g].missed_dup_bytes;
    defrag_kept +=
        defrag.backups[g].rewritten_bytes + defrag.backups[g].missed_dup_bytes;
    redundant += silo.backups[g].redundant_bytes;
  }
  if (redundant > 0) {
    EXPECT_LE(defrag_kept, silo_kept + redundant / 20)
        << "DeFrag should not keep substantially more redundancy than SiLo";
  }
}

TEST(EndToEndTest, DefragRestoreAtLeastAsFastAsDdfs) {
  // Paper Fig. 6 at test scale: by the last generation DeFrag's restore
  // bandwidth must not be worse than DDFS's. Kilobyte-scale runs carry a
  // few percent of CDC noise, so run with a firmer alpha than the paper's
  // 0.1 (the alpha=0.1 shape is asserted at bench scale, Fig. 6).
  const EngineRun ddfs = run_engine(EngineKind::kDdfs, 8);
  const EngineRun defrag = run_engine(EngineKind::kDefrag, 8, /*alpha=*/0.3);
  const auto& d_last = ddfs.restores.back();
  const auto& f_last = defrag.restores.back();
  EXPECT_GE(f_last.read_mb_s(), d_last.read_mb_s() * 0.95);
}

TEST(EndToEndTest, SimTimeDecomposesIntoComputeAndSeeks) {
  const EngineRun ddfs = run_engine(EngineKind::kDdfs, 2);
  for (const auto& b : ddfs.backups) {
    const double compute =
        static_cast<double>(b.logical_bytes) / 1e6 /
        testing::small_engine_config().cpu_mb_per_s;
    const double seeks = static_cast<double>(b.io.seeks) *
                         testing::small_engine_config().disk.seek_seconds;
    // sim time >= compute + seek time; the rest is transfer time.
    EXPECT_GE(b.sim_seconds + 1e-9, compute + seeks);
  }
}

TEST(EndToEndTest, RecipesResolveEveryEntry) {
  auto cfg = testing::small_engine_config();
  DedupSystem sys(EngineKind::kDefrag, cfg);
  workload::SingleUserSeries series(555, tiny_fs());
  sys.ingest_as(1, series.next().stream);
  sys.ingest_as(2, series.next().stream);

  const auto* base = dynamic_cast<const EngineBase*>(&sys.engine());
  ASSERT_NE(base, nullptr);
  for (std::uint32_t g : {1u, 2u}) {
    for (const auto& e : base->recipe_store().get(g).entries()) {
      ASSERT_TRUE(e.location.valid());
      const Container& c = base->container_store().peek(e.location.container);
      const ByteView data = c.read(e.location);  // throws if out of bounds
      EXPECT_EQ(Fingerprint::of(data), e.fp)
          << "recipe entry content mismatch";
    }
  }
}

}  // namespace
}  // namespace defrag

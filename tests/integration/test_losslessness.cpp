// DESIGN.md invariant 1, the one that matters most: for every engine and
// every generation of a realistic evolving workload, restore reproduces the
// ingested stream bit-for-bit.
#include <gtest/gtest.h>

#include "common/sha256.h"
#include "core/dedup_system.h"
#include "testing/engine_config.h"
#include "workload/backup_series.h"

namespace defrag {
namespace {

class LosslessnessTest : public ::testing::TestWithParam<EngineKind> {};

workload::FsParams tiny_fs() {
  workload::FsParams p;
  p.initial_files = 12;
  p.mean_file_bytes = 48 * 1024;
  p.mean_extent_bytes = 8 * 1024;
  return p;
}

TEST_P(LosslessnessTest, EveryGenerationRestoresExactly) {
  auto cfg = testing::small_engine_config();
  DedupSystem sys(GetParam(), cfg);
  workload::SingleUserSeries series(2024, tiny_fs());

  std::vector<Sha256::Digest> digests;
  constexpr std::uint32_t kGenerations = 6;
  for (std::uint32_t g = 1; g <= kGenerations; ++g) {
    const workload::Backup b = series.next();
    digests.push_back(Sha256::hash(b.stream));
    sys.ingest_as(g, b.stream);
  }

  for (std::uint32_t g = 1; g <= kGenerations; ++g) {
    const Bytes restored = sys.restore_bytes(g);
    EXPECT_EQ(Sha256::hash(restored), digests[g - 1])
        << sys.engine().name() << " corrupted generation " << g;
  }
}

TEST_P(LosslessnessTest, RestoreIsRepeatable) {
  DedupSystem sys(GetParam(), testing::small_engine_config());
  workload::SingleUserSeries series(7, tiny_fs());
  sys.ingest_as(1, series.next().stream);
  EXPECT_EQ(sys.restore_bytes(1), sys.restore_bytes(1));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, LosslessnessTest,
                         ::testing::Values(EngineKind::kDdfs,
                                           EngineKind::kSilo,
                                           EngineKind::kSparse,
                                           EngineKind::kDefrag,
                                           EngineKind::kCbr),
                         [](const auto& tpi) {
                           return to_string(tpi.param).substr(
                               0, to_string(tpi.param).find('-'));
                         });

// Losslessness must also survive local container compression: the physical
// representation changes, the logical bytes must not.
TEST_P(LosslessnessTest, SurvivesContainerCompression) {
  auto cfg = testing::small_engine_config();
  cfg.compress_containers = true;
  DedupSystem sys(GetParam(), cfg);

  workload::FsParams fs = tiny_fs();
  fs.text_fraction = 0.6;  // make compression actually engage
  workload::SingleUserSeries series(777, fs);
  std::vector<Sha256::Digest> digests;
  for (std::uint32_t g = 1; g <= 3; ++g) {
    const workload::Backup b = series.next();
    digests.push_back(Sha256::hash(b.stream));
    sys.ingest_as(g, b.stream);
  }
  for (std::uint32_t g = 1; g <= 3; ++g) {
    EXPECT_EQ(Sha256::hash(sys.restore_bytes(g)), digests[g - 1]);
  }
}

}  // namespace
}  // namespace defrag

// Unit tests for defrag.metrics.v1 ingestion (obs/metrics_parse.h).
// The fuzz harness (tests/fuzz/fuzz_metrics_json.cpp) covers arbitrary
// bytes; here we pin the deterministic contract: everything
// write_metrics_json() emits parses back with the same values, and each
// schema rule rejects by name.
#include "obs/metrics_parse.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/stats.h"
#include "obs/metrics.h"

namespace defrag::obs {
namespace {

std::string exported(const MetricsRegistry& reg) {
  std::ostringstream os;
  write_metrics_json(reg.snapshot(), os);
  return os.str();
}

TEST(MetricsParseTest, EmptyRegistryRoundTrips) {
  MetricsRegistry reg;
  const ParsedMetricsDocument doc = parse_metrics_v1(exported(reg));
  EXPECT_TRUE(doc.metrics.empty());
}

TEST(MetricsParseTest, WriterOutputParsesBackWithSameValues) {
  MetricsRegistry reg;
  reg.counter("ingest.chunks").add(12345);
  reg.gauge("cache.hit_rate").set(0.875);
  auto& h = reg.histogram("chunk.size");
  for (std::uint64_t v : {0ull, 1ull, 100ull, 5000ull, 70000ull}) {
    h.observe(static_cast<double>(v));
  }

  const ParsedMetricsDocument doc = parse_metrics_v1(exported(reg));
  ASSERT_EQ(doc.metrics.size(), 3u);

  const ParsedMetric* counter = doc.find("ingest.chunks");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->kind, MetricKind::kCounter);
  EXPECT_EQ(counter->counter, 12345u);

  const ParsedMetric* gauge = doc.find("cache.hit_rate");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(gauge->gauge, 0.875);

  const ParsedMetric* hist = doc.find("chunk.size");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, MetricKind::kHistogram);
  EXPECT_EQ(hist->hist.count, 5u);
  EXPECT_EQ(hist->hist.zeros, 1u);
  EXPECT_DOUBLE_EQ(hist->hist.min, 0.0);
  EXPECT_DOUBLE_EQ(hist->hist.max, 70000.0);
  // Reconstructed bucket state mirrors the live histogram.
  EXPECT_EQ(hist->hist.buckets.count(), 5u);
  EXPECT_EQ(hist->hist.buckets.zeros(), 1u);
}

TEST(MetricsParseTest, FindMissesReturnNull) {
  MetricsRegistry reg;
  reg.counter("a").add(1);
  const ParsedMetricsDocument doc = parse_metrics_v1(exported(reg));
  EXPECT_EQ(doc.find("b"), nullptr);
}

TEST(MetricsParseTest, WrongSchemaMarkerRejected) {
  EXPECT_THROW(
      parse_metrics_v1("{\"schema\": \"defrag.metrics.v2\", \"metrics\": {}}"),
      MetricsParseError);
}

TEST(MetricsParseTest, TrailingBytesRejected) {
  EXPECT_THROW(parse_metrics_v1(
                   "{\"schema\": \"defrag.metrics.v1\", \"metrics\": {}} x"),
               MetricsParseError);
}

TEST(MetricsParseTest, UnknownMetricKindRejected) {
  EXPECT_THROW(
      parse_metrics_v1("{\"schema\": \"defrag.metrics.v1\", \"metrics\": "
                       "{\"m\": {\"type\": \"summary\", \"value\": 1}}}"),
      MetricsParseError);
}

TEST(MetricsParseTest, IllegalMetricNameRejected) {
  EXPECT_THROW(
      parse_metrics_v1("{\"schema\": \"defrag.metrics.v1\", \"metrics\": "
                       "{\"bad name\": {\"type\": \"counter\", "
                       "\"value\": 1}}}"),
      MetricsParseError);
}

TEST(MetricsParseTest, HistogramBucketAccountingMismatchRejected) {
  // zeros + bucket counts != count: the cross-field rule that keeps
  // Log2Histogram reconstruction honest.
  const std::string doc =
      "{\"schema\": \"defrag.metrics.v1\", \"metrics\": {\"h\": {"
      "\"type\": \"histogram\", \"count\": 10, \"sum\": 1, \"mean\": 1, "
      "\"stddev\": 0, \"min\": 1, \"max\": 1, \"p50\": 1, \"p90\": 1, "
      "\"p99\": 1, \"zeros\": 0, \"buckets\": [[0, 3]]}}}";
  EXPECT_THROW(parse_metrics_v1(doc), MetricsParseError);
}

TEST(MetricsParseTest, HistogramBucketIndexOutOfRangeRejected) {
  const std::string doc =
      "{\"schema\": \"defrag.metrics.v1\", \"metrics\": {\"h\": {"
      "\"type\": \"histogram\", \"count\": 1, \"sum\": 1, \"mean\": 1, "
      "\"stddev\": 0, \"min\": 1, \"max\": 1, \"p50\": 1, \"p90\": 1, "
      "\"p99\": 1, \"zeros\": 0, \"buckets\": [[40, 1]]}}}";
  EXPECT_THROW(parse_metrics_v1(doc), MetricsParseError);
}

TEST(MetricsParseTest, DuplicateMetricNamesRejected) {
  EXPECT_THROW(
      parse_metrics_v1("{\"schema\": \"defrag.metrics.v1\", \"metrics\": "
                       "{\"m\": {\"type\": \"counter\", \"value\": 1}, "
                       "\"m\": {\"type\": \"counter\", \"value\": 2}}}"),
      MetricsParseError);
}

TEST(MetricsParseTest, MissingFieldRejected) {
  EXPECT_THROW(
      parse_metrics_v1("{\"schema\": \"defrag.metrics.v1\", \"metrics\": "
                       "{\"m\": {\"type\": \"counter\"}}}"),
      MetricsParseError);
}

TEST(MetricsParseTest, OverlongStringRejected) {
  std::string doc = "{\"schema\": \"";
  doc.append(kMaxMetricsString + 1, 'a');
  doc += "\", \"metrics\": {}}";
  EXPECT_THROW(parse_metrics_v1(doc), MetricsParseError);
}

}  // namespace
}  // namespace defrag::obs

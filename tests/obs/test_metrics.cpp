#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "testing/json_check.h"

namespace defrag::obs {
namespace {

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.events");
  Counter& b = reg.counter("x.events");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);
}

TEST(MetricsRegistryTest, KindCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("x.thing");
  EXPECT_THROW(reg.gauge("x.thing"), CheckFailure);
  EXPECT_THROW(reg.histogram("x.thing"), CheckFailure);
  reg.histogram("y.thing");
  EXPECT_THROW(reg.counter("y.thing"), CheckFailure);
}

TEST(MetricsRegistryTest, InvalidNamesThrow) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter(""), CheckFailure);
  EXPECT_THROW(reg.counter("has space"), CheckFailure);
  EXPECT_THROW(reg.counter("has\"quote"), CheckFailure);
  // The full legal alphabet.
  EXPECT_NO_THROW(reg.counter("Az0.9_-ok"));
}

TEST(MetricsRegistryTest, GaugeTracksSetFlag) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("x.level");
  EXPECT_FALSE(g.is_set());
  g.set(0.0);  // setting to the default value still counts as set
  EXPECT_TRUE(g.is_set());
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST(MetricsRegistryTest, HistogramFeedsStatsAndBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("x.us");
  h.observe(100.0);
  h.observe(300.0);
  h.observe(0.0);
  h.observe(-5.0);  // negatives: exact in moments, zeros in buckets
  EXPECT_EQ(h.stats().count(), 4u);
  EXPECT_DOUBLE_EQ(h.stats().sum(), 395.0);
  EXPECT_DOUBLE_EQ(h.stats().min(), -5.0);
  EXPECT_EQ(h.buckets().zeros(), 2u);
  EXPECT_EQ(h.buckets().bucket(6), 1u);  // 100 in [64, 128)
  EXPECT_EQ(h.buckets().bucket(8), 1u);  // 300 in [256, 512)
}

TEST(MetricsRegistryTest, DisabledSkipsUpdates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x.count");
  Gauge& g = reg.gauge("x.gauge");
  Histogram& h = reg.histogram("x.hist");
  set_enabled(false);
  c.add(7);
  g.set(1.0);
  h.observe(42.0);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_FALSE(g.is_set());
  EXPECT_EQ(h.stats().count(), 0u);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(MetricsRegistryTest, MergeShardsEqualsSequential) {
  // The canonical parallel pattern: one registry per worker, folded into a
  // root. Every metric kind must land exactly where single-threaded
  // accumulation would put it.
  MetricsRegistry expected;
  MetricsRegistry root;
  std::vector<std::unique_ptr<MetricsRegistry>> shards;
  for (int s = 0; s < 4; ++s) shards.push_back(std::make_unique<MetricsRegistry>());

  for (int i = 0; i < 400; ++i) {
    const auto v = static_cast<double>(i % 37);
    expected.counter("w.events").add(1);
    expected.histogram("w.size").observe(v);
    shards[static_cast<std::size_t>(i % 4)]->counter("w.events").add(1);
    shards[static_cast<std::size_t>(i % 4)]->histogram("w.size").observe(v);
  }
  expected.gauge("w.last").set(3.5);
  shards[2]->gauge("w.last").set(3.5);

  for (const auto& s : shards) root.merge_from(*s);

  EXPECT_EQ(root.counter("w.events").value(),
            expected.counter("w.events").value());
  EXPECT_TRUE(root.gauge("w.last").is_set());
  EXPECT_DOUBLE_EQ(root.gauge("w.last").value(), 3.5);
  const Histogram& hr = root.histogram("w.size");
  const Histogram& he = expected.histogram("w.size");
  EXPECT_EQ(hr.stats().count(), he.stats().count());
  EXPECT_NEAR(hr.stats().mean(), he.stats().mean(), 1e-9);
  EXPECT_NEAR(hr.stats().variance(), he.stats().variance(), 1e-9);
  EXPECT_EQ(hr.buckets().zeros(), he.buckets().zeros());
  for (int i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(hr.buckets().bucket(i), he.buckets().bucket(i)) << "bucket " << i;
  }
}

TEST(MetricsRegistryTest, MergeFromWithPrefixRescopesNames) {
  // The per-tenant publication pattern from defrag-serve: a session-local
  // registry with bare names folded under a scope prefix in the target.
  MetricsRegistry session;
  session.counter("backups").add(2);
  session.counter("logical_bytes").add(4096);
  session.gauge("last_rate").set(1.5);
  session.histogram("wall_us").observe(100.0);

  MetricsRegistry root;
  root.counter("service.tenant.alice.backups").add(1);  // pre-existing total
  root.merge_from(session, "service.tenant.alice.");

  EXPECT_EQ(root.counter("service.tenant.alice.backups").value(), 3u);
  EXPECT_EQ(root.counter("service.tenant.alice.logical_bytes").value(), 4096u);
  EXPECT_DOUBLE_EQ(root.gauge("service.tenant.alice.last_rate").value(), 1.5);
  EXPECT_EQ(root.histogram("service.tenant.alice.wall_us").stats().count(), 1u);
  // The bare names never appear in the target.
  EXPECT_EQ(root.size(), 4u);

  // Two tenants with identical bare names stay disjoint.
  root.merge_from(session, "service.tenant.bob.");
  EXPECT_EQ(root.counter("service.tenant.bob.backups").value(), 2u);
  EXPECT_EQ(root.counter("service.tenant.alice.backups").value(), 3u);

  // A prefix producing an invalid combined name is rejected.
  EXPECT_THROW(root.merge_from(session, "bad prefix."), CheckFailure);
}

TEST(MetricsRegistryTest, CounterIsThreadSafe) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x.parallel");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry reg;
  ThreadPool pool(4);
  pool.parallel_for(64, [&reg](std::size_t i) {
    reg.counter("shared.counter").add(1);
    reg.counter("per." + std::to_string(i % 8)).add(1);
  });
  EXPECT_EQ(reg.counter("shared.counter").value(), 64u);
  EXPECT_EQ(reg.size(), 9u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x.count");
  Histogram& h = reg.histogram("x.hist");
  reg.gauge("x.gauge").set(9.0);
  c.add(10);
  h.observe(5.0);
  reg.reset();
  EXPECT_EQ(reg.size(), 3u);  // registrations survive
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.stats().count(), 0u);
  EXPECT_FALSE(reg.gauge("x.gauge").is_set());
  c.add(1);  // the old handle still feeds the same slot
  EXPECT_EQ(reg.snapshot().counter_or_zero("x.count"), 1u);
}

TEST(MetricsSnapshotTest, SortedLookupAndDelta) {
  MetricsRegistry reg;
  reg.counter("b.two").add(2);
  reg.counter("a.one").add(1);
  reg.gauge("c.three").set(3.0);

  const MetricsSnapshot before = reg.snapshot();
  ASSERT_EQ(before.entries.size(), 3u);
  EXPECT_EQ(before.entries[0].name, "a.one");  // sorted by name
  EXPECT_EQ(before.entries[1].name, "b.two");
  EXPECT_EQ(before.counter_or_zero("b.two"), 2u);
  EXPECT_EQ(before.counter_or_zero("missing"), 0u);
  EXPECT_EQ(before.counter_or_zero("c.three"), 0u);  // not a counter
  EXPECT_EQ(before.find("missing"), nullptr);

  reg.counter("b.two").add(5);
  const MetricsSnapshot after = reg.snapshot();
  EXPECT_EQ(counter_delta(before, after, "b.two"), 5u);
  EXPECT_EQ(counter_delta(before, after, "a.one"), 0u);
  EXPECT_EQ(counter_delta(after, before, "b.two"), 0u);  // never negative
}

TEST(MetricsJsonTest, GoldenOutput) {
  // The schema is a contract with tools/metrics_diff.py and external
  // consumers: byte-exact output for fixed input.
  MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.gauge").set(2.5);
  Histogram& h = reg.histogram("c.hist");
  h.observe(2.0);
  h.observe(2.0);

  std::ostringstream os;
  write_metrics_json(reg.snapshot(), os);
  const std::string expected =
      "{\n"
      "  \"schema\": \"defrag.metrics.v1\",\n"
      "  \"metrics\": {\n"
      "    \"a.count\": {\"type\": \"counter\", \"value\": 3},\n"
      "    \"b.gauge\": {\"type\": \"gauge\", \"value\": 2.5},\n"
      "    \"c.hist\": {\"type\": \"histogram\", \"count\": 2, \"sum\": 4, "
      "\"mean\": 2, \"stddev\": 0, \"min\": 2, \"max\": 2, \"p50\": 3, "
      "\"p90\": 3, \"p99\": 3, \"zeros\": 0, \"buckets\": [[1, 2]]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(MetricsJsonTest, OutputIsValidJson) {
  // Exercise every kind plus an unset gauge and an empty histogram, and run
  // the result through a real JSON grammar check.
  MetricsRegistry reg;
  reg.counter("k.counter").add(123456789);
  reg.gauge("k.gauge_set").set(-0.125);
  reg.gauge("k.gauge_unset");
  reg.histogram("k.hist_empty");
  Histogram& h = reg.histogram("k.hist");
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i * i));

  std::ostringstream os;
  write_metrics_json(reg.snapshot(), os);
  EXPECT_TRUE(testing::JsonChecker::valid(os.str())) << os.str();
}

TEST(MetricsJsonTest, EmptySnapshotIsValidJson) {
  std::ostringstream os;
  write_metrics_json(MetricsSnapshot{}, os);
  EXPECT_TRUE(testing::JsonChecker::valid(os.str())) << os.str();
}

TEST(SlugTest, CollapsesToMetricSegment) {
  EXPECT_EQ(slug("DDFS-Like"), "ddfs_like");
  EXPECT_EQ(slug("SiLo-Like"), "silo_like");
  EXPECT_EQ(slug("DeFrag"), "defrag");
  EXPECT_EQ(slug("Sparse-Indexing"), "sparse_indexing");
  EXPECT_EQ(slug("CBR-Like"), "cbr_like");
  EXPECT_EQ(slug("  weird  name!! "), "weird_name");
  EXPECT_EQ(slug(""), "");
}

TEST(GlobalRegistryTest, IsASingleton) {
  MetricsRegistry& a = MetricsRegistry::global();
  MetricsRegistry& b = MetricsRegistry::global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace defrag::obs

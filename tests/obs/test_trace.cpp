#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/request_context.h"
#include "testing/json_check.h"

namespace defrag::obs {
namespace {

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  {
    TraceSpan span("work", "test", rec);
  }
  rec.record_instant("ping", "test");
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(TraceRecorderTest, SpanRecordsCompleteEvent) {
  TraceRecorder rec;
  rec.enable();
  {
    TraceSpan span("ingest", "engine", rec);
  }
  ASSERT_EQ(rec.event_count(), 1u);
  const TraceEvent e = rec.events()[0];
  EXPECT_EQ(e.name, "ingest");
  EXPECT_EQ(e.category, "engine");
  EXPECT_EQ(e.phase, 'X');
  EXPECT_GT(e.tid, 0u);
}

TEST(TraceRecorderTest, FinishIsIdempotent) {
  TraceRecorder rec;
  rec.enable();
  {
    TraceSpan span("once", "test", rec);
    span.finish();
    span.finish();
  }  // destructor must not double-record
  EXPECT_EQ(rec.event_count(), 1u);
}

TEST(TraceRecorderTest, SpanArmedAtConstructionOnly) {
  // A span built while disabled stays silent even if recording starts
  // before it dies — half-open spans would have garbage timestamps.
  TraceRecorder rec;
  {
    TraceSpan span("early", "test", rec);
    rec.enable();
  }
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(TraceRecorderTest, TimestampsAreMonotonic) {
  TraceRecorder rec;
  rec.enable();
  { TraceSpan a("first", "test", rec); }
  { TraceSpan b("second", "test", rec); }
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
}

TEST(TraceRecorderTest, ThreadsGetDistinctIds) {
  TraceRecorder rec;
  rec.enable();
  rec.record_instant("main", "test");
  std::thread([&rec] { rec.record_instant("worker", "test"); }).join();
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TraceRecorderTest, ClearDropsEvents) {
  TraceRecorder rec;
  rec.enable();
  rec.record_instant("a", "test");
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(TraceJsonTest, ChromeTraceIsValidJson) {
  TraceRecorder rec;
  rec.enable();
  {
    TraceSpan outer("phase \"quoted\"", "cat\\slash", rec);
    TraceSpan inner("nested\nline", "test", rec);
  }
  rec.record_instant("marker", "test");

  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(testing::JsonChecker::valid(json)) << json;
  // The Chrome trace-event envelope Perfetto expects.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

TEST(TraceJsonTest, EmptyRecorderIsValidJson) {
  TraceRecorder rec;
  std::ostringstream os;
  rec.write_chrome_json(os);
  EXPECT_TRUE(testing::JsonChecker::valid(os.str())) << os.str();
}

TEST(GlobalTraceRecorderTest, IsASingleton) {
  EXPECT_EQ(&TraceRecorder::global(), &TraceRecorder::global());
}

TEST(TraceRidTest, EventsCarryTheActiveRequestId) {
  TraceRecorder rec;
  rec.enable();
  rec.record_instant("before", "test");
  {
    RequestScope scope(7);
    TraceSpan span("request-work", "test", rec);
  }
  rec.record_instant("after", "test");
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].rid, 0u);
  EXPECT_EQ(events[1].rid, 7u);
  EXPECT_EQ(events[2].rid, 0u);
}

TEST(TraceRidTest, NestedScopesRestoreOnExit) {
  TraceRecorder rec;
  rec.enable();
  RequestScope outer(10);
  {
    RequestScope inner(11);
    rec.record_instant("inner", "test");
  }
  rec.record_instant("outer", "test");
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].rid, 11u);
  EXPECT_EQ(events[1].rid, 10u);
}

TEST(TraceRidTest, RidTaggedJsonGroupsByRequestTrack) {
  TraceRecorder rec;
  rec.enable();
  {
    RequestScope scope(5);
    TraceSpan span("service.backup", "service", rec);
  }
  rec.record_instant("untagged", "test");
  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(testing::JsonChecker::valid(json)) << json;
  // The rid event moves to the synthetic per-request track, named via a
  // thread_name metadata event; its OS thread survives in args.thread.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("rid 5"), std::string::npos);
  EXPECT_NE(json.find("\"rid\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"thread\""), std::string::npos);
}

// The concurrency contract behind the service's per-session tracing: many
// threads recording under distinct RequestScopes at once must produce a
// valid trace with every event attributed to exactly its own thread's rid
// (TSan runs this in CI; a racy recorder or a shared rid slot fails here).
TEST(TraceRidTest, ConcurrentScopedSpansStayCorrectlyTagged) {
  TraceRecorder rec;
  rec.enable();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      const auto rid = static_cast<std::uint64_t>(t) + 1;
      RequestScope scope(rid);
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("span-" + std::to_string(t), "test", rec);
        rec.record_instant("tick-" + std::to_string(t), "test");
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const auto events = rec.events();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  std::set<std::uint64_t> rids;
  for (const TraceEvent& e : events) {
    ASSERT_GE(e.rid, 1u);
    ASSERT_LE(e.rid, static_cast<std::uint64_t>(kThreads));
    // The name encodes the producing thread: rid and name must agree.
    const std::string suffix = std::to_string(e.rid - 1);
    EXPECT_EQ(e.name.substr(e.name.rfind('-') + 1), suffix) << e.name;
    rids.insert(e.rid);
  }
  EXPECT_EQ(rids.size(), static_cast<std::size_t>(kThreads));

  std::ostringstream os;
  rec.write_chrome_json(os);
  EXPECT_TRUE(testing::JsonChecker::valid(os.str()));
}

}  // namespace
}  // namespace defrag::obs

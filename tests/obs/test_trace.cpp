#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "testing/json_check.h"

namespace defrag::obs {
namespace {

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  {
    TraceSpan span("work", "test", rec);
  }
  rec.record_instant("ping", "test");
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(TraceRecorderTest, SpanRecordsCompleteEvent) {
  TraceRecorder rec;
  rec.enable();
  {
    TraceSpan span("ingest", "engine", rec);
  }
  ASSERT_EQ(rec.event_count(), 1u);
  const TraceEvent e = rec.events()[0];
  EXPECT_EQ(e.name, "ingest");
  EXPECT_EQ(e.category, "engine");
  EXPECT_EQ(e.phase, 'X');
  EXPECT_GT(e.tid, 0u);
}

TEST(TraceRecorderTest, FinishIsIdempotent) {
  TraceRecorder rec;
  rec.enable();
  {
    TraceSpan span("once", "test", rec);
    span.finish();
    span.finish();
  }  // destructor must not double-record
  EXPECT_EQ(rec.event_count(), 1u);
}

TEST(TraceRecorderTest, SpanArmedAtConstructionOnly) {
  // A span built while disabled stays silent even if recording starts
  // before it dies — half-open spans would have garbage timestamps.
  TraceRecorder rec;
  {
    TraceSpan span("early", "test", rec);
    rec.enable();
  }
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(TraceRecorderTest, TimestampsAreMonotonic) {
  TraceRecorder rec;
  rec.enable();
  { TraceSpan a("first", "test", rec); }
  { TraceSpan b("second", "test", rec); }
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
}

TEST(TraceRecorderTest, ThreadsGetDistinctIds) {
  TraceRecorder rec;
  rec.enable();
  rec.record_instant("main", "test");
  std::thread([&rec] { rec.record_instant("worker", "test"); }).join();
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TraceRecorderTest, ClearDropsEvents) {
  TraceRecorder rec;
  rec.enable();
  rec.record_instant("a", "test");
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(TraceJsonTest, ChromeTraceIsValidJson) {
  TraceRecorder rec;
  rec.enable();
  {
    TraceSpan outer("phase \"quoted\"", "cat\\slash", rec);
    TraceSpan inner("nested\nline", "test", rec);
  }
  rec.record_instant("marker", "test");

  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(testing::JsonChecker::valid(json)) << json;
  // The Chrome trace-event envelope Perfetto expects.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

TEST(TraceJsonTest, EmptyRecorderIsValidJson) {
  TraceRecorder rec;
  std::ostringstream os;
  rec.write_chrome_json(os);
  EXPECT_TRUE(testing::JsonChecker::valid(os.str())) << os.str();
}

TEST(GlobalTraceRecorderTest, IsASingleton) {
  EXPECT_EQ(&TraceRecorder::global(), &TraceRecorder::global());
}

}  // namespace
}  // namespace defrag::obs

#include "obs/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/request_context.h"
#include "testing/json_check.h"

namespace defrag::obs {
namespace {

/// A Logger wired to an in-memory sink. Each test uses its own instance so
/// the global logger (and its default stderr sink) stays untouched.
struct CapturedLogger {
  Logger logger;
  std::vector<std::string> lines;

  CapturedLogger() {
    logger.set_sink([this](std::string_view line) {
      lines.emplace_back(line);
    });
  }
};

TEST(LogLevelTest, ParseRoundTrips) {
  for (const auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                           LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(to_string(level)), level);
  }
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

TEST(LoggerTest, LevelFiltering) {
  CapturedLogger cap;
  cap.logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(cap.logger.should_log(LogLevel::kDebug));
  EXPECT_FALSE(cap.logger.should_log(LogLevel::kInfo));
  EXPECT_TRUE(cap.logger.should_log(LogLevel::kWarn));
  EXPECT_TRUE(cap.logger.should_log(LogLevel::kError));
  cap.logger.log(LogLevel::kInfo, "dropped");
  cap.logger.log(LogLevel::kError, "kept");
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_NE(cap.lines[0].find("kept"), std::string::npos);
}

TEST(LoggerTest, OffSilencesEverything) {
  CapturedLogger cap;
  cap.logger.set_level(LogLevel::kOff);
  cap.logger.log(LogLevel::kError, "nope");
  EXPECT_TRUE(cap.lines.empty());
  // kOff is not a line level: even with the threshold at debug, a
  // log(kOff, ...) call emits nothing.
  cap.logger.set_level(LogLevel::kDebug);
  cap.logger.log(LogLevel::kOff, "still-nope");
  EXPECT_TRUE(cap.lines.empty());
}

TEST(LoggerTest, HumanFormatCarriesEventAndFields) {
  CapturedLogger cap;
  cap.logger.log(LogLevel::kInfo, "session.start",
                 {{"tenant", "acme"}, {"count", 7}, {"ok", true}});
  ASSERT_EQ(cap.lines.size(), 1u);
  const std::string& line = cap.lines[0];
  EXPECT_NE(line.find(" INFO session.start"), std::string::npos);
  EXPECT_NE(line.find("tenant=acme"), std::string::npos);
  EXPECT_NE(line.find("count=7"), std::string::npos);
  EXPECT_NE(line.find("ok=true"), std::string::npos);
}

TEST(LoggerTest, HumanFormatQuotesAmbiguousStrings) {
  CapturedLogger cap;
  cap.logger.log(LogLevel::kWarn, "e", {{"reason", "two words"}});
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_NE(cap.lines[0].find("reason=\"two words\""), std::string::npos);
}

TEST(LoggerTest, JsonLinesAreValidAndTyped) {
  CapturedLogger cap;
  cap.logger.set_json(true);
  cap.logger.log(LogLevel::kWarn, "session.reject",
                 {{"tenant", "a\"b"},
                  {"quota", 4},
                  {"ratio", 0.5},
                  {"draining", false}});
  ASSERT_EQ(cap.lines.size(), 1u);
  const std::string& line = cap.lines[0];
  EXPECT_TRUE(testing::JsonChecker::valid(line)) << line;
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"session.reject\""), std::string::npos);
  // Numbers and bools stay bare; only strings are quoted.
  EXPECT_NE(line.find("\"quota\":4"), std::string::npos);
  EXPECT_NE(line.find("\"draining\":false"), std::string::npos);
}

TEST(LoggerTest, RequestScopeAddsRidField) {
  CapturedLogger cap;
  cap.logger.set_json(true);
  cap.logger.log(LogLevel::kInfo, "outside");
  {
    RequestScope scope(42);
    cap.logger.log(LogLevel::kInfo, "inside");
    {
      RequestScope nested(43);
      cap.logger.log(LogLevel::kInfo, "nested");
    }
    cap.logger.log(LogLevel::kInfo, "restored");
  }
  cap.logger.log(LogLevel::kInfo, "after");
  ASSERT_EQ(cap.lines.size(), 5u);
  EXPECT_EQ(cap.lines[0].find("\"rid\""), std::string::npos);
  EXPECT_NE(cap.lines[1].find("\"rid\":42"), std::string::npos);
  EXPECT_NE(cap.lines[2].find("\"rid\":43"), std::string::npos);
  EXPECT_NE(cap.lines[3].find("\"rid\":42"), std::string::npos);
  EXPECT_EQ(cap.lines[4].find("\"rid\""), std::string::npos);
}

TEST(LoggerTest, RateLimitCapsPerEventAndReportsSuppressed) {
  CapturedLogger cap;
  cap.logger.set_rate_limit(1, 0.05);
  for (int i = 0; i < 4; ++i) {
    cap.logger.log(LogLevel::kInfo, "storm", {{"i", i}});
  }
  // Distinct event names get their own windows.
  cap.logger.log(LogLevel::kInfo, "calm");
  EXPECT_EQ(cap.lines.size(), 2u);  // one "storm" + one "calm"
  // The next window's first "storm" line reports what the last one dropped.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  cap.logger.log(LogLevel::kInfo, "storm");
  ASSERT_EQ(cap.lines.size(), 3u);
  EXPECT_NE(cap.lines[2].find("suppressed=3"), std::string::npos)
      << cap.lines[2];
}

TEST(LoggerTest, ConcurrentLoggingKeepsLinesIntact) {
  CapturedLogger cap;
  cap.logger.set_json(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cap, t] {
      RequestScope scope(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        cap.logger.log(LogLevel::kInfo, "worker.tick",
                       {{"thread", t}, {"i", i}});
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(cap.lines.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (const std::string& line : cap.lines) {
    EXPECT_TRUE(testing::JsonChecker::valid(line)) << line;
    EXPECT_NE(line.find("\"rid\":"), std::string::npos) << line;
  }
}

TEST(LoggerTest, SinkResetRestoresDefault) {
  // set_sink(nullptr) must fall back to the stderr sink, not crash.
  Logger logger;
  logger.set_sink(nullptr);
  logger.set_level(LogLevel::kOff);
  logger.log(LogLevel::kError, "never-emitted");
}

TEST(GlobalLoggerTest, IsASingleton) {
  EXPECT_EQ(&Logger::global(), &Logger::global());
}

}  // namespace
}  // namespace defrag::obs

// Operator's guide to alpha: sweep the SPL threshold on a sample of your
// workload and pick the point where restore bandwidth stops improving
// faster than compression deteriorates.
//
//   $ ./alpha_tuning
#include <cstdio>

#include "common/table.h"
#include "core/defrag_engine.h"
#include "core/dedup_system.h"
#include "workload/backup_series.h"

int main() {
  using namespace defrag;

  std::printf("Sweeping alpha over an 8-generation sample workload...\n\n");

  Table t({"alpha", "compression_x", "restore_MB_s", "rewritten_MiB",
           "mean_SPL", "rewrite_bins_%"});
  for (double alpha : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    workload::FsParams fs;
    fs.initial_files = 24;
    fs.mean_file_bytes = 192 * 1024;
    fs.mutation.file_modify_prob = 0.45;
    workload::SingleUserSeries series(/*seed=*/4242, fs);

    EngineConfig cfg;
    cfg.defrag_alpha = alpha;
    DedupSystem sys(EngineKind::kDefrag, cfg);

    std::uint64_t rewritten = 0;
    for (std::uint32_t g = 1; g <= 8; ++g) {
      rewritten += sys.ingest_as(g, series.next().stream).rewritten_bytes;
    }
    const RestoreResult rr = sys.restore(8);

    const auto& eng = dynamic_cast<const DefragEngine&>(sys.engine());
    const auto& d = eng.last_decision_stats();
    t.add_row({Table::num(alpha, 2), Table::num(sys.compression_ratio(), 2),
               Table::num(rr.read_mb_s(), 1),
               Table::num(static_cast<double>(rewritten) / 1048576.0, 1),
               Table::num(d.mean_spl(), 3),
               Table::num(d.rewrite_bin_fraction() * 100.0, 1)});
  }
  t.print();

  std::printf(
      "\nReading the table: alpha=0 never rewrites (best compression, worst\n"
      "read); the paper's alpha=0.1 buys most of the read bandwidth for a\n"
      "small compression cost; past ~0.5 you pay storage for little gain.\n");
  return 0;
}

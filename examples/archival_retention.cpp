// Archival retention: a year of weekly backups under a keep-last-N policy.
// Shows the offline lifecycle around DeFrag: ingest -> scrub -> retire old
// generations with the re-linearizing compactor -> scrub again -> compare
// restore speed before/after.
//
//   $ ./archival_retention [weeks] [keep]    (default 16, keep 4)
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "common/units.h"
#include "core/dedup_system.h"
#include "dedup/integrity.h"
#include "dedup/restore_strategies.h"
#include "storage/compactor.h"
#include "workload/backup_series.h"

int main(int argc, char** argv) {
  using namespace defrag;
  const std::uint32_t weeks =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 16;
  const std::uint32_t keep =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;

  workload::FsParams fs;
  fs.initial_files = 32;
  fs.mean_file_bytes = 192 * 1024;
  fs.mutation.file_modify_prob = 0.4;
  workload::SingleUserSeries series(/*seed=*/2026, fs);

  EngineConfig cfg;
  DedupSystem sys(EngineKind::kDefrag, cfg);
  for (std::uint32_t g = 1; g <= weeks; ++g) {
    sys.ingest_as(g, series.next().stream);
  }
  const auto& base = dynamic_cast<const EngineBase&>(sys.engine());
  std::printf("%u weekly backups ingested: %s logical, %s physical (%.2fx)\n",
              weeks, format_bytes(sys.logical_bytes_ingested()).c_str(),
              format_bytes(sys.stored_bytes()).c_str(),
              sys.compression_ratio());

  // Pre-retirement scrub over the generations we intend to keep.
  std::vector<std::uint32_t> retained;
  for (std::uint32_t g = weeks - keep + 1; g <= weeks; ++g) retained.push_back(g);
  const IntegrityReport before_scrub =
      scrub(base.container_store(), base.recipe_store(), retained, cfg.disk);
  std::printf("pre-GC scrub: %llu entries, %s checked — %s\n",
              static_cast<unsigned long long>(before_scrub.entries_checked),
              format_bytes(before_scrub.bytes_checked).c_str(),
              before_scrub.clean() ? "clean" : "CORRUPT");

  // Retire everything but the last `keep` generations.
  Compactor compactor(cfg.container_bytes);
  ContainerStore fresh_store;
  RecipeStore fresh_recipes;
  DiskSim gc_sim(cfg.disk);
  const CompactionResult gc =
      compactor.compact(base.container_store(), base.recipe_store(), retained,
                        &fresh_store, &fresh_recipes, gc_sim);
  std::printf(
      "GC (keep last %u): reclaimed %s (%.1f%%), %zu -> %zu containers, "
      "%.2fs simulated\n",
      keep, format_bytes(gc.dead_bytes).c_str(),
      gc.reclaimed_fraction() * 100.0, gc.containers_before,
      gc.containers_after, gc.sim_seconds);

  const IntegrityReport after_scrub =
      scrub(fresh_store, fresh_recipes, retained, cfg.disk);
  std::printf("post-GC scrub: %s\n", after_scrub.clean() ? "clean" : "CORRUPT");

  RestoreOptions opt;
  opt.cache_containers = cfg.restore_cache_containers;
  Table t({"generation", "before_MB_s", "after_MB_s"});
  for (std::uint32_t g : retained) {
    const RestoreResult before = restore_with_strategy(
        base.container_store(), base.recipe_store().get(g), cfg.disk, opt,
        nullptr);
    const RestoreResult after = restore_with_strategy(
        fresh_store, fresh_recipes.get(g), cfg.disk, opt, nullptr);
    t.add_row({Table::integer(g), Table::num(before.read_mb_s(), 1),
               Table::num(after.read_mb_s(), 1)});
  }
  t.print();
  std::printf(
      "\nCompaction rewrote live chunks in newest-recipe order: retirement\n"
      "doubles as defragmentation for the backups that survive it.\n");
  return (before_scrub.clean() && after_scrub.clean()) ? 0 : 1;
}

// Disaster-recovery drill: ingest a long backup history, then restore every
// generation and watch read bandwidth degrade with fragmentation — and how
// DeFrag flattens that curve vs plain exact dedup.
//
//   $ ./backup_restore_cycle [generations]   (default 12)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/sha256.h"
#include "common/table.h"
#include "core/dedup_system.h"
#include "workload/backup_series.h"

namespace {

struct CycleResult {
  std::vector<defrag::RestoreResult> restores;
  bool all_verified = true;
  double compression = 0.0;
};

CycleResult run_cycle(defrag::EngineKind kind, std::uint32_t generations) {
  using namespace defrag;
  workload::FsParams fs;
  fs.initial_files = 32;
  fs.mean_file_bytes = 192 * 1024;
  fs.mutation.file_modify_prob = 0.4;
  workload::SingleUserSeries series(/*seed=*/99, fs);

  DedupSystem sys(kind, EngineConfig{});
  std::vector<Sha256::Digest> digests;
  for (std::uint32_t g = 1; g <= generations; ++g) {
    const workload::Backup b = series.next();
    digests.push_back(Sha256::hash(b.stream));
    sys.ingest_as(g, b.stream);
  }

  CycleResult out;
  for (std::uint32_t g = 1; g <= generations; ++g) {
    RestoreResult rr;
    const Bytes restored = sys.restore_bytes(g, &rr);
    out.all_verified &= Sha256::hash(restored) == digests[g - 1];
    out.restores.push_back(rr);
  }
  out.compression = sys.compression_ratio();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace defrag;
  const std::uint32_t generations =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 12;

  std::printf("Restoring %u generations with DDFS-Like and DeFrag...\n\n",
              generations);
  const CycleResult ddfs = run_cycle(EngineKind::kDdfs, generations);
  const CycleResult defrag = run_cycle(EngineKind::kDefrag, generations);

  Table t({"generation", "DDFS_read_MB_s", "DeFrag_read_MB_s",
           "DDFS_loads", "DeFrag_loads"});
  for (std::uint32_t g = 0; g < generations; ++g) {
    t.add_row({Table::integer(g + 1),
               Table::num(ddfs.restores[g].read_mb_s(), 1),
               Table::num(defrag.restores[g].read_mb_s(), 1),
               Table::integer(static_cast<long long>(ddfs.restores[g].container_loads)),
               Table::integer(static_cast<long long>(defrag.restores[g].container_loads))});
  }
  t.print();

  std::printf("\nintegrity: DDFS %s, DeFrag %s\n",
              ddfs.all_verified ? "all verified" : "CORRUPT",
              defrag.all_verified ? "all verified" : "CORRUPT");
  std::printf("compression: DDFS %.2fx, DeFrag %.2fx (the cost of locality)\n",
              ddfs.compression, defrag.compression);
  return (ddfs.all_verified && defrag.all_verified) ? 0 : 1;
}

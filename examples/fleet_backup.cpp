// Fleet scenario: five users back up into one shared dedup store (the
// paper's 66-backup dataset shape). Shows cross-user sharing, per-user
// throughput, and how the three engines compare on the same fleet.
//
//   $ ./fleet_backup [backups]   (default 20)
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "common/units.h"
#include "core/dedup_system.h"
#include "workload/backup_series.h"

int main(int argc, char** argv) {
  using namespace defrag;
  const std::uint32_t backups =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 20;

  std::printf("Five-user fleet, %u backups round-robin, five engines...\n\n",
              backups);

  Table t({"engine", "compression_x", "mean_tput_MB_s", "min_tput_MB_s",
           "kept_redundant_%", "physical"});
  for (EngineKind kind :
       {EngineKind::kDdfs, EngineKind::kSparse, EngineKind::kSilo,
        EngineKind::kCbr, EngineKind::kDefrag}) {
    workload::FsParams fs;
    fs.initial_files = 24;
    fs.mean_file_bytes = 128 * 1024;
    workload::MultiUserSeries series(/*seed=*/1234, fs);

    DedupSystem sys(kind, EngineConfig{});
    double sum_tput = 0.0, min_tput = 1e18;
    std::uint64_t kept = 0, redundant = 0;
    for (std::uint32_t i = 0; i < backups; ++i) {
      const workload::Backup b = series.next();
      const BackupResult r = sys.ingest_as(b.generation, b.stream);
      sum_tput += r.throughput_mb_s();
      min_tput = std::min(min_tput, r.throughput_mb_s());
      kept += r.rewritten_bytes + r.missed_dup_bytes;
      redundant += r.redundant_bytes;
    }
    const double kept_pct =
        redundant ? 100.0 * static_cast<double>(kept) / static_cast<double>(redundant)
                  : 0.0;
    t.add_row({sys.engine().name(), Table::num(sys.compression_ratio(), 2),
               Table::num(sum_tput / backups, 1), Table::num(min_tput, 1),
               Table::num(kept_pct, 2),
               format_bytes(sys.stored_bytes())});
  }
  t.print();

  std::printf(
      "\nDDFS keeps nothing redundant but pays in seeks; Sparse-Indexing and\n"
      "SiLo keep what their probes miss; CBR and DeFrag keep only what they\n"
      "deliberately rewrite for locality. Same workload, same chunker — the\n"
      "columns are the paper's whole argument in one table.\n");
  return 0;
}

// Observability tour: run a short DeFrag backup series with tracing on,
// then read the numbers back three ways —
//   1. direct registry queries (counters/gauges by name),
//   2. per-phase attribution by diffing snapshots (counter_delta),
//   3. the two export formats: defrag.metrics.v1 JSON and a Chrome
//      trace-event file for https://ui.perfetto.dev.
//
//   $ ./observability
//
// Writes observability_metrics.json and observability_trace.json into the
// working directory.
#include <cstdio>
#include <fstream>

#include "core/dedup_system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/backup_series.h"

int main() {
  using namespace defrag;

  obs::TraceRecorder::global().enable();
  auto& registry = obs::MetricsRegistry::global();

  workload::FsParams fs;
  fs.initial_files = 24;
  fs.mean_file_bytes = 128 * 1024;
  workload::SingleUserSeries series(/*seed=*/11, fs);
  DedupSystem sys(EngineKind::kDefrag, {});

  for (int i = 0; i < 4; ++i) {
    const workload::Backup b = series.next();

    // Per-generation attribution: the registry only accumulates, so diff
    // snapshots taken around the phase you care about.
    const obs::MetricsSnapshot before = registry.snapshot();
    sys.ingest_as(b.generation, b.stream);
    const obs::MetricsSnapshot after = registry.snapshot();

    std::printf(
        "gen %u: %llu index page faults, %llu bloom probes, %llu rewritten "
        "bytes\n",
        b.generation,
        static_cast<unsigned long long>(
            obs::counter_delta(before, after, "index.paged.page_faults")),
        static_cast<unsigned long long>(
            obs::counter_delta(before, after, "index.bloom.probes")),
        static_cast<unsigned long long>(
            obs::counter_delta(before, after, "engine.defrag.rewritten_bytes")));
  }
  sys.restore(4);

  // Direct queries against the live registry.
  const obs::MetricsSnapshot snap = registry.snapshot();
  std::printf("\ncumulative, by name:\n");
  for (const char* name :
       {"engine.defrag.spl_bins", "engine.defrag.rewrite_bins",
        "storage.container.appends", "storage.restore_cache.hits",
        "storage.restore_cache.misses"}) {
    std::printf("  %-32s %llu\n", name,
                static_cast<unsigned long long>(snap.counter_or_zero(name)));
  }

  // Exports: the same serializers defrag-cli and the benches use.
  {
    std::ofstream out("observability_metrics.json");
    obs::write_metrics_json(snap, out);
  }
  {
    std::ofstream out("observability_trace.json");
    obs::TraceRecorder::global().write_chrome_json(out);
  }
  std::printf(
      "\nwrote observability_metrics.json (%zu metrics) and "
      "observability_trace.json (%zu events)\n",
      snap.entries.size(), obs::TraceRecorder::global().event_count());
  std::printf("open the trace at https://ui.perfetto.dev\n");
  return 0;
}

// Quickstart: deduplicate three backups of an evolving file system with
// DeFrag, then restore and verify the latest one.
//
//   $ ./quickstart
//
// Walks the whole public API surface in ~40 lines: DedupSystem, the
// workload generator, per-backup metrics, and integrity-checked restore.
#include <cstdio>

#include "common/sha256.h"
#include "common/units.h"
#include "core/dedup_system.h"
#include "workload/backup_series.h"

int main() {
  using namespace defrag;

  // A synthetic "user home directory" that evolves between backups.
  workload::FsParams fs;
  fs.initial_files = 32;
  fs.mean_file_bytes = 256 * 1024;
  workload::SingleUserSeries series(/*seed=*/7, fs);

  // DeFrag with the paper's alpha = 0.1. Swap EngineKind::kDdfs or kSilo to
  // compare baselines — the API is identical.
  EngineConfig cfg;
  cfg.defrag_alpha = 0.1;
  DedupSystem sys(EngineKind::kDefrag, cfg);

  Bytes latest;
  for (int i = 0; i < 3; ++i) {
    const workload::Backup b = series.next();
    latest = b.stream;
    const BackupResult r = sys.ingest_as(b.generation, b.stream);
    std::printf(
        "backup %u: %s ingested, %s unique, %s deduped, %s rewritten "
        "-> %.1f MB/s simulated\n",
        r.generation, format_bytes(r.logical_bytes).c_str(),
        format_bytes(r.unique_bytes).c_str(),
        format_bytes(r.removed_bytes).c_str(),
        format_bytes(r.rewritten_bytes).c_str(), r.throughput_mb_s());
  }

  std::printf("\nstore: %s physical for %s logical (%.2fx compression)\n",
              format_bytes(sys.stored_bytes()).c_str(),
              format_bytes(sys.logical_bytes_ingested()).c_str(),
              sys.compression_ratio());

  RestoreResult rr;
  const Bytes restored = sys.restore_bytes(3, &rr);
  const bool ok = Sha256::hash(restored) == Sha256::hash(latest);
  std::printf("restore of backup 3: %s at %.1f MB/s (%llu container loads) — %s\n",
              format_bytes(rr.logical_bytes).c_str(), rr.read_mb_s(),
              static_cast<unsigned long long>(rr.container_loads),
              ok ? "verified bit-for-bit" : "CORRUPT");
  return ok ? 0 : 1;
}

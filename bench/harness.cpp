#include "harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/metrics.h"

namespace defrag::bench {

bool export_metrics_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  obs::write_metrics_json(obs::MetricsRegistry::global().snapshot(), out);
  return out.good();
}

Scale resolve_scale() {
  // DEFRAG_METRICS_JSON=<path>: every bench dumps the metrics registry on
  // exit, in the same schema as `defrag-cli --metrics-json`, so runs can be
  // compared with tools/metrics_diff.py without touching the bench code.
  if (const char* path = std::getenv("DEFRAG_METRICS_JSON");
      path != nullptr && *path != '\0') {
    static bool registered = false;
    if (!registered) {
      registered = true;
      std::atexit([] {
        export_metrics_json(std::getenv("DEFRAG_METRICS_JSON"));
      });
    }
  }

  Scale s;
  // ~45-70 MB per backup (~40-55 segments): enough segments that the
  // binomial noise of per-segment similarity misses averages into the
  // smooth curves the paper shows at 647 GB / 1.72 TB scale.
  s.fs.initial_files = 96;
  s.fs.mean_file_bytes = 256 * 1024;
  s.fs.mean_extent_bytes = 32 * 1024;

  const char* env = std::getenv("DEFRAG_BENCH_SCALE");
  if (env && std::strcmp(env, "tiny") == 0) {
    s.single_user_generations = 6;
    s.multi_user_generations = 12;
    s.fs.initial_files = 16;
    s.fs.mean_file_bytes = 96 * 1024;
  }
  return s;
}

EngineConfig paper_engine_config() {
  EngineConfig cfg;
  // Chunking: classic backup-dedup 8 KiB average CDC.
  cfg.chunker_kind = ChunkerKind::kGear;
  // Segments: the paper's 0.5-2 MB content-defined segments (defaults).
  // Containers: DDFS's 4 MB.
  cfg.container_bytes = 4ull << 20;
  // Disk: short-stroked enterprise drive of the paper's era.
  cfg.disk.seek_seconds = 0.001;
  cfg.disk.read_mb_per_s = 150.0;
  cfg.disk.write_mb_per_s = 140.0;
  // CPU pipeline rate: anchors generation-1 throughput near the paper's
  // 213 MB/s (the first backup is compute/write bound, not seek bound).
  cfg.cpu_mb_per_s = 240.0;
  // RAM budgets are deliberately small relative to the store, as in the
  // paper's setting where the index and metadata dwarf RAM.
  cfg.metadata_cache_containers = 8;
  cfg.restore_cache_containers = 8;
  cfg.index.page_cache_pages = 64;
  cfg.index.expected_chunks = 1 << 22;
  // SiLo: blocks of 4 segments (~4 MB) and a 4-block cache. Small relative
  // to a backup, as in the paper where RAM covers a sliver of the dataset —
  // this is what makes SiLo *near*-exact rather than exact.
  cfg.silo_segments_per_block = 4;
  cfg.silo_block_cache_blocks = 2;
  cfg.silo_probe_reps = 1;
  // Emulate a RAM-bounded similarity index: stale registrations resolve to
  // older blocks whose recipes lag the segment's churn (see engine.h).
  cfg.silo_index_sample_rate = 0.2;
  cfg.defrag_alpha = 0.1;  // the paper evaluates alpha = 0.1
  return cfg;
}

namespace {
SeriesRun run_series(EngineKind kind, std::uint32_t generations,
                     const std::function<workload::Backup()>& next_backup,
                     bool restore_all,
                     const std::function<void(EngineConfig&)>& mutate_cfg) {
  EngineConfig cfg = paper_engine_config();
  if (mutate_cfg) mutate_cfg(cfg);
  DedupSystem sys(kind, cfg);

  SeriesRun run;
  run.kind = kind;
  for (std::uint32_t g = 1; g <= generations; ++g) {
    const workload::Backup b = next_backup();
    run.backups.push_back(sys.ingest_as(g, b.stream));
  }
  if (restore_all) {
    for (std::uint32_t g = 1; g <= generations; ++g) {
      run.restores.push_back(sys.restore(g));
    }
  }
  run.compression_ratio = sys.compression_ratio();
  return run;
}
}  // namespace

SeriesRun run_single_user(EngineKind kind, const Scale& scale,
                          bool restore_all,
                          const std::function<void(EngineConfig&)>& mutate_cfg) {
  workload::SingleUserSeries series(scale.seed, scale.fs);
  return run_series(
      kind, scale.single_user_generations, [&] { return series.next(); },
      restore_all, mutate_cfg);
}

SeriesRun run_multi_user(EngineKind kind, const Scale& scale,
                         const std::function<void(EngineConfig&)>& mutate_cfg) {
  // Each user only backs up every 5th generation, so per-backup churn must
  // be heavier than the single-user series for the same placement decay:
  // graduate students compile, edit and reorganize between weekly backups.
  workload::FsParams fs = scale.fs;
  fs.mutation.file_modify_prob = 0.55;
  fs.mutation.extent_replace_prob = 0.16;
  fs.mutation.extent_insert_prob = 0.03;
  fs.mutation.extent_delete_prob = 0.03;
  // Fresh epochs at 41/42 reproduce the paper's high-locality generations.
  workload::MultiUserSeries series(scale.seed, fs, {41, 42});
  return run_series(
      kind, scale.multi_user_generations, [&] { return series.next(); },
      /*restore_all=*/false, mutate_cfg);
}

void print_header(const std::string& figure, const std::string& claim,
                  const Scale& scale) {
  std::printf("=== %s ===\n", figure.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("scale: %u single-user gens, %u multi-user gens, ~%u files/user\n\n",
              scale.single_user_generations, scale.multi_user_generations,
              scale.fs.initial_files);
}

void check_shape(const std::string& what, bool ok, double lhs, double rhs) {
  std::printf("[%s] %s (%.2f vs %.2f)\n", ok ? "SHAPE-OK" : "SHAPE-FAIL",
              what.c_str(), lhs, rhs);
}

}  // namespace defrag::bench

// Ablation — redundancy beyond dedup's reach: how much of the post-dedup
// "unique" data is actually a near-duplicate of an older chunk, capturable
// by resemblance detection + delta encoding (the Ddelta/DEC motivation).
//
// Method: chunk two adjacent generations; index generation 1's chunks in a
// ResemblanceIndex; for every generation-2 chunk that exact dedup would
// store (fingerprint unseen), look up a delta base and measure the encoded
// size against storing it raw.
#include <cstdio>

#include <unordered_map>
#include <unordered_set>

#include "chunking/gear.h"
#include "common/table.h"
#include "common/units.h"
#include "compress/delta.h"
#include "harness.h"
#include "index/features.h"
#include "workload/backup_series.h"

int main() {
  using namespace defrag;
  const auto scale = bench::resolve_scale();
  bench::print_header(
      "Ablation — delta-encoding potential of post-dedup unique data",
      "Exact dedup only removes identical chunks; edited chunks are stored "
      "in full. Resemblance + delta capture part of that residue.",
      scale);

  workload::SingleUserSeries series(scale.seed, scale.fs);
  const workload::Backup gen1 = series.next();
  const workload::Backup gen2 = series.next();

  GearChunker chunker;
  const auto refs1 = chunker.split(gen1.stream);
  const auto refs2 = chunker.split(gen2.stream);

  // Index generation 1: exact fingerprints + resemblance features.
  std::unordered_set<Fingerprint> seen;
  std::unordered_map<Fingerprint, ChunkRef> by_fp;
  ResemblanceIndex resemblance;
  for (const ChunkRef& r : refs1) {
    const ByteView data{gen1.stream.data() + r.offset, r.size};
    const Fingerprint fp = Fingerprint::of(data);
    if (seen.insert(fp).second) {
      by_fp.emplace(fp, r);
      resemblance.add(compute_features(data), fp);
    }
  }

  std::uint64_t dup_bytes = 0;      // removed by exact dedup
  std::uint64_t unique_bytes = 0;   // stored raw by exact dedup
  std::uint64_t delta_candidates = 0;
  std::uint64_t delta_raw_bytes = 0;      // candidate bytes before delta
  std::uint64_t delta_encoded_bytes = 0;  // after delta

  for (const ChunkRef& r : refs2) {
    const ByteView data{gen2.stream.data() + r.offset, r.size};
    const Fingerprint fp = Fingerprint::of(data);
    if (seen.contains(fp)) {
      dup_bytes += r.size;
      continue;
    }
    unique_bytes += r.size;
    const auto base_fp = resemblance.find_base(compute_features(data));
    if (!base_fp) continue;
    const ChunkRef base_ref = by_fp.at(*base_fp);
    const ByteView base{gen1.stream.data() + base_ref.offset, base_ref.size};
    const Bytes delta = Delta::encode(base, data);
    if (delta.size() < r.size / 2) {  // only count deltas that pay
      ++delta_candidates;
      delta_raw_bytes += r.size;
      delta_encoded_bytes += delta.size();
    }
  }

  Table t({"metric", "value"});
  t.add_row({"gen-2 duplicate bytes (dedup removes)", format_bytes(dup_bytes)});
  t.add_row({"gen-2 unique bytes (dedup stores raw)", format_bytes(unique_bytes)});
  t.add_row({"delta-encodable chunks", Table::integer(static_cast<long long>(delta_candidates))});
  t.add_row({"...their raw size", format_bytes(delta_raw_bytes)});
  t.add_row({"...their delta size", format_bytes(delta_encoded_bytes)});
  const double captured =
      unique_bytes == 0
          ? 0.0
          : static_cast<double>(delta_raw_bytes - delta_encoded_bytes) /
                static_cast<double>(unique_bytes);
  t.add_row({"extra saving over exact dedup", Table::num(captured * 100, 1) + "%"});
  t.print();
  std::printf("\n");

  bench::check_shape("delta captures a meaningful slice of unique bytes",
                     captured > 0.05, captured * 100, 5.0);
  bench::check_shape("deltas that pay compress their chunks well",
                     delta_raw_bytes == 0 ||
                         delta_encoded_bytes < delta_raw_bytes / 2,
                     static_cast<double>(delta_encoded_bytes),
                     static_cast<double>(delta_raw_bytes));
  return 0;
}

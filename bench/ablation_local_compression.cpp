// Ablation — dedup x local compression stacking: sweep the workload's
// text fraction and report how much each layer contributes to the total
// space saving (DDFS's classic "10-30x = dedup x local LZ" decomposition).
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "core/dedup_system.h"
#include "harness.h"
#include "workload/backup_series.h"

int main() {
  using namespace defrag;
  auto scale = bench::resolve_scale();
  scale.single_user_generations =
      std::min<std::uint32_t>(scale.single_user_generations, 10);
  bench::print_header(
      "Ablation — dedup x local LZSS compression",
      "Dedup removes identical chunks across generations; local compression "
      "squeezes the unique residue. Their product is the total saving; the "
      "LZ term scales with how compressible the content is.",
      scale);

  Table t({"text_fraction", "dedup_x", "local_lz_x", "total_x",
           "physical"});
  double lz_at_zero = 0.0, lz_at_high = 0.0;

  for (double text : {0.0, 0.3, 0.6, 0.9}) {
    EngineConfig cfg = bench::paper_engine_config();
    cfg.compress_containers = true;
    DedupSystem sys(EngineKind::kDefrag, cfg);

    workload::FsParams fs = scale.fs;
    fs.text_fraction = text;
    workload::SingleUserSeries series(scale.seed, fs);
    for (std::uint32_t g = 1; g <= scale.single_user_generations; ++g) {
      sys.ingest_as(g, series.next().stream);
    }
    const auto& base = dynamic_cast<const EngineBase&>(sys.engine());
    const double dedup_x =
        static_cast<double>(sys.logical_bytes_ingested()) /
        static_cast<double>(base.stored_data_bytes());
    const double lz_x = static_cast<double>(base.stored_data_bytes()) /
                        static_cast<double>(base.stored_physical_bytes());
    t.add_row({Table::num(text, 1), Table::num(dedup_x, 2),
               Table::num(lz_x, 2), Table::num(dedup_x * lz_x, 2),
               format_bytes(base.stored_physical_bytes())});
    if (text == 0.0) lz_at_zero = lz_x;
    if (text == 0.9) lz_at_high = lz_x;
  }
  t.print();
  std::printf("\n");

  bench::check_shape("incompressible content gains ~nothing from LZ",
                     lz_at_zero < 1.05, lz_at_zero, 1.05);
  bench::check_shape("text-heavy content gains substantially from LZ",
                     lz_at_high > 1.5, lz_at_high, 1.5);
  return 0;
}

// Microbenchmarks for the obs subsystem: raw primitive cost (counter add,
// histogram observe, disabled-counter add) and the end-to-end question the
// instrumentation budget hangs on — how much wall-clock a full ingest pays
// with metrics enabled vs disabled (acceptance: < 3%).
#include <benchmark/benchmark.h>

#include "core/dedup_system.h"
#include "harness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/backup_series.h"

namespace defrag {
namespace {

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("bench.counter");
  for (auto _ : state) {
    c.add(1);
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

void BM_CounterAddDisabled(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("bench.counter");
  obs::set_enabled(false);
  for (auto _ : state) {
    c.add(1);
  }
  obs::set_enabled(true);
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAddDisabled);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("bench.hist");
  double v = 1.0;
  for (auto _ : state) {
    h.observe(v);
    v += 3.0;
  }
  benchmark::DoNotOptimize(h.stats().count());
}
BENCHMARK(BM_HistogramObserve);

void BM_RegistryLookup(benchmark::State& state) {
  // Name-to-handle resolution under the registry mutex: the cost hot paths
  // avoid by caching handles, and cold paths (once per backup) pay.
  obs::MetricsRegistry reg;
  reg.counter("engine.defrag.rewritten_bytes");
  for (auto _ : state) {
    benchmark::DoNotOptimize(&reg.counter("engine.defrag.rewritten_bytes"));
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_Snapshot(benchmark::State& state) {
  obs::MetricsRegistry reg;
  for (int i = 0; i < 200; ++i) {
    reg.counter("bench.counter." + std::to_string(i)).add(1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.snapshot());
  }
}
BENCHMARK(BM_Snapshot);

/// One full DeFrag ingest of a small series, metrics enabled (range 1) or
/// disabled (range 0). The relative wall-clock difference between the two
/// labels is the instrumentation overhead (< 3% acceptance; the atomics are
/// far below measurement noise in practice).
void BM_IngestObsToggle(benchmark::State& state) {
  const bool obs_on = state.range(0) != 0;
  workload::FsParams fs;
  fs.initial_files = 12;
  fs.mean_file_bytes = 96 * 1024;

  obs::set_enabled(obs_on);
  for (auto _ : state) {
    state.PauseTiming();
    workload::SingleUserSeries series(42, fs);
    DedupSystem sys(EngineKind::kDefrag, bench::paper_engine_config());
    state.ResumeTiming();
    for (std::uint32_t g = 1; g <= 4; ++g) {
      const workload::Backup b = series.next();
      benchmark::DoNotOptimize(sys.ingest_as(g, b.stream));
    }
  }
  obs::set_enabled(true);
  state.SetLabel(obs_on ? "metrics on" : "metrics off");
}
BENCHMARK(BM_IngestObsToggle)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace defrag

BENCHMARK_MAIN();

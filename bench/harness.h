// Shared harness for the figure-reproduction benches.
//
// Each fig*_ binary reproduces one figure of the paper: it generates the
// corresponding synthetic dataset, drives one or more engines through it,
// and prints the figure's series as an aligned table plus a shape summary
// (the paper-vs-measured comparison recorded in EXPERIMENTS.md).
//
// Scale: DEFRAG_BENCH_SCALE=tiny shrinks the datasets ~4x for smoke runs;
// the default ("paper") uses the full generation counts of the paper (20
// single-user, 66 multi-user) at laptop-sized backups.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/dedup_system.h"
#include "workload/backup_series.h"

namespace defrag::bench {

struct Scale {
  std::uint32_t single_user_generations = 20;  // Figs. 2, 3, 6
  std::uint32_t multi_user_generations = 66;   // Figs. 4, 5
  workload::FsParams fs;
  std::uint64_t seed = 20120701;  // fixed: all figures share the dataset
};

/// Resolve the scale from DEFRAG_BENCH_SCALE ("paper" default, "tiny").
Scale resolve_scale();

/// The engine configuration used by every figure bench: parameters anchored
/// to the paper's era (see DESIGN.md "Substitutions").
EngineConfig paper_engine_config();

/// One engine's full pass over a backup series.
struct SeriesRun {
  EngineKind kind;
  std::vector<BackupResult> backups;
  std::vector<RestoreResult> restores;  // filled only if restore_all
  double compression_ratio = 0.0;
};

/// Drive `kind` through `generations` backups of a fresh series (single- or
/// multi-user). `mutate_cfg` may tweak the engine config (alpha sweeps etc).
SeriesRun run_single_user(
    EngineKind kind, const Scale& scale, bool restore_all = false,
    const std::function<void(EngineConfig&)>& mutate_cfg = {});
SeriesRun run_multi_user(
    EngineKind kind, const Scale& scale,
    const std::function<void(EngineConfig&)>& mutate_cfg = {});

/// Print the standard bench header (binary name, scale, dataset size).
void print_header(const std::string& figure, const std::string& claim,
                  const Scale& scale);

/// Dump the global MetricsRegistry as defrag.metrics.v1 JSON — the exact
/// format of `defrag-cli --metrics-json`, so tools/metrics_diff.py can
/// compare bench runs against CLI runs. Returns false (with a message on
/// stderr) if the file cannot be written.
bool export_metrics_json(const std::string& path);

/// Shape assertion helper: prints PASS/FAIL with the two numbers.
void check_shape(const std::string& what, bool ok, double lhs, double rhs);

}  // namespace defrag::bench

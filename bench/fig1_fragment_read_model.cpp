// Fig. 1 / Eq. (1): the analytic cost of reading an N-fragment file.
// The paper's motivating arithmetic — read time grows linearly in the
// number of fragments while the transfer term stays constant.
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "harness.h"
#include "storage/disk_model.h"

int main() {
  using namespace defrag;
  const auto scale = bench::resolve_scale();
  bench::print_header(
      "Fig. 1 / Eq. (1) — fragmented read model",
      "F(read) = N * T_seek + size / W_seq: reading an N-fragment file "
      "costs N seeks; deduplicated files approach one seek per chunk.",
      scale);

  const DiskModel disk = bench::paper_engine_config().disk;
  const std::uint64_t file_bytes = 64ull << 20;  // a 64 MiB file

  Table t({"fragments", "read_time_s", "read_MB_s", "seek_share_%"});
  double t1 = 0.0, t256 = 0.0;
  for (std::uint64_t n : {1ull, 2ull, 4ull, 8ull, 16ull, 32ull, 64ull, 128ull,
                          256ull, 512ull, 1024ull}) {
    const double secs = fragmented_read_seconds(disk, n, file_bytes);
    const double seek_share =
        static_cast<double>(n) * disk.seek_seconds / secs * 100.0;
    t.add_row({Table::integer(static_cast<long long>(n)),
               Table::num(secs, 3), Table::num(mb_per_sec(file_bytes, secs), 1),
               Table::num(seek_share, 1)});
    if (n == 1) t1 = secs;
    if (n == 256) t256 = secs;
  }
  t.print();
  std::printf("\n");

  // Paper §II-A: ignoring the common transfer term, the N-fragment file is
  // N times slower: (F_N - transfer) == N * (F_1 - transfer).
  const double transfer = disk.read_seconds(file_bytes);
  bench::check_shape("seek cost scales linearly in fragments (x256)",
                     std::abs((t256 - transfer) / (t1 - transfer) - 256.0) < 1e-6,
                     (t256 - transfer) / (t1 - transfer), 256.0);
  return 0;
}

// Ablation — SPL decision-group width (FGDEFRAG-style extension): evaluate
// the rewrite decision over 1..8 consecutive segments.
//
// Finding: width acts as an alpha multiplier. A bin of fixed byte size is a
// smaller *fraction* of a wider group, so more bins fall below alpha and
// get rewritten — wider groups linearize harder (better restores) at a
// steeper compression cost. Tune alpha and width together.
#include <cstdio>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace defrag;
  auto scale = bench::resolve_scale();
  scale.single_user_generations =
      std::min<std::uint32_t>(scale.single_user_generations, 12);
  bench::print_header(
      "Ablation — SPL decision-group width (FGDEFRAG direction)",
      "Group width 1 is the paper's DeFrag; width scales the SPL "
      "denominator, so wider groups rewrite more and restore faster.",
      scale);

  Table t({"group_segments", "compression_x", "rewritten_MiB",
           "restore_MB_s", "restore_loads"});
  double rewritten_w1 = 0.0, rewritten_w4 = 0.0;
  double restore_w1 = 0.0, restore_w4 = 0.0;

  for (std::size_t width : {1ull, 2ull, 4ull, 8ull}) {
    const auto run = bench::run_single_user(
        EngineKind::kDefrag, scale, /*restore_all=*/true,
        [&](EngineConfig& cfg) { cfg.defrag_group_segments = width; });
    std::uint64_t rewritten = 0;
    for (const auto& b : run.backups) rewritten += b.rewritten_bytes;
    t.add_row({Table::integer(static_cast<long long>(width)),
               Table::num(run.compression_ratio, 2),
               Table::num(static_cast<double>(rewritten) / 1048576.0, 1),
               Table::num(run.restores.back().read_mb_s(), 1),
               Table::integer(static_cast<long long>(
                   run.restores.back().container_loads))});
    if (width == 1) {
      rewritten_w1 = static_cast<double>(rewritten);
      restore_w1 = run.restores.back().read_mb_s();
    }
    if (width == 4) {
      rewritten_w4 = static_cast<double>(rewritten);
      restore_w4 = run.restores.back().read_mb_s();
    }
  }
  t.print();
  std::printf("\n");

  bench::check_shape(
      "wider groups rewrite more (SPL denominator effect)",
      rewritten_w4 > rewritten_w1, rewritten_w4 / 1048576.0,
      rewritten_w1 / 1048576.0);
  bench::check_shape("wider groups restore faster",
                     restore_w4 > restore_w1, restore_w4, restore_w1);
  return 0;
}

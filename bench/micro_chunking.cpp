// Microbenchmarks (google-benchmark): chunking algorithms, fingerprinting,
// and the parallel preparation pipeline. These measure real wall-clock cost
// of the substrate, independent of the simulated-disk experiments.
//
// Besides the google-benchmark series, main() ALWAYS runs a fast self-timed
// SIMD check pass (scalar vs dispatched gear scan, scalar vs multi-buffer
// SHA) and records the results as gauges:
//
//   bench.simd.check.*     boolean gates (1 = pass) compared by ctest's
//                          bench_simd_gate against the committed
//                          BENCH_simd_hotloop.json via tools/metrics_diff.py
//   bench.simd.*           informational speedup ratios
//   system.bench.simd.*    raw MB/s (machine-dependent, never gated)
//
// Regenerate the committed snapshot after an intentional change:
//
//   DEFRAG_METRICS_JSON=BENCH_simd_hotloop.json
//     ./build/bench/micro_chunking --benchmark_filter='^$'
//
// (both on one shell line).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "chunking/fixed.h"
#include "chunking/gear.h"
#include "chunking/gear_simd.h"
#include "chunking/rabin.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "common/sha1.h"
#include "common/sha256.h"
#include "common/sha_mb.h"
#include "compress/lzss.h"
#include "dedup/pipeline.h"
#include "harness.h"
#include "obs/metrics.h"
#include "workload/content.h"

namespace defrag {
namespace {

Bytes bench_data(std::size_t n) {
  Bytes b(n);
  Xoshiro256 rng(42);
  rng.fill(b);
  return b;
}

void BM_RabinChunking(benchmark::State& state) {
  const Bytes data = bench_data(8 << 20);
  RabinChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RabinChunking)->Unit(benchmark::kMillisecond);

void BM_GearChunking(benchmark::State& state) {
  const Bytes data = bench_data(8 << 20);
  GearChunker chunker({}, state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(state.range(0) ? "normalized" : "plain");
}
BENCHMARK(BM_GearChunking)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// The full gear split with the dispatch pinned to one ISA level —
/// scalar-vs-SIMD on the same data, one series per level the host has.
void BM_GearChunkingAtLevel(benchmark::State& state) {
  const auto level = static_cast<cpu::IsaLevel>(state.range(0));
  if (level > cpu::detected_isa_level()) {
    state.SkipWithError("ISA level not available on this host");
    return;
  }
  const Bytes data = bench_data(8 << 20);
  GearChunker chunker;
  cpu::force_isa_for_testing(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  cpu::clear_isa_override_for_testing();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(cpu::isa_level_name(level));
}
BENCHMARK(BM_GearChunkingAtLevel)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

/// The raw boundary-scan kernel per ISA level, without the chunker loop
/// around it: one long no-boundary region (mask that never hits), the pure
/// hot-loop throughput number.
void BM_GearScanKernel(benchmark::State& state) {
  const auto level = static_cast<cpu::IsaLevel>(state.range(0));
  if (level > cpu::detected_isa_level()) {
    state.SkipWithError("ISA level not available on this host");
    return;
  }
  const Bytes data = bench_data(8 << 20);
  const simd::GearScanFn fn = simd::gear_scan_for(level);
  const std::uint64_t* table = GearChunker::table().data();
  for (auto _ : state) {
    std::uint64_t h = 0;
    benchmark::DoNotOptimize(
        fn(data.data(), 0, data.size(), ~0ull, h, table));
    benchmark::DoNotOptimize(h);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(cpu::isa_level_name(level));
}
BENCHMARK(BM_GearScanKernel)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

/// Incremental split_to (the sink-callback path every engine actually uses;
/// split() is a wrapper that collects into a vector).
void BM_GearSplitToIncremental(benchmark::State& state) {
  const Bytes data = bench_data(8 << 20);
  GearChunker chunker;
  for (auto _ : state) {
    std::size_t count = 0;
    chunker.split_to(data, [&](const ChunkRef&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_GearSplitToIncremental)->Unit(benchmark::kMillisecond);

void BM_FixedChunking(benchmark::State& state) {
  const Bytes data = bench_data(8 << 20);
  FixedChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_FixedChunking)->Unit(benchmark::kMillisecond);

void BM_Sha1(benchmark::State& state) {
  const Bytes data = bench_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(4096)->Arg(8192)->Arg(65536)->Arg(1 << 20);

void BM_Sha256(benchmark::State& state) {
  const Bytes data = bench_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(8192)->Arg(1 << 20);

/// A chunk-shaped batch for the multi-buffer hashers: 64 views of 8 KiB.
std::vector<ByteView> mb_batch(const Bytes& data) {
  constexpr std::size_t kChunk = 8192;
  std::vector<ByteView> views;
  for (std::size_t off = 0; off + kChunk <= data.size(); off += kChunk) {
    views.push_back(ByteView(data.data() + off, kChunk));
  }
  return views;
}

void BM_Sha1MultiBuffer(benchmark::State& state) {
  const auto level = static_cast<cpu::IsaLevel>(state.range(0));
  if (level > cpu::detected_isa_level()) {
    state.SkipWithError("ISA level not available on this host");
    return;
  }
  const Bytes data = bench_data(64 * 8192);
  const std::vector<ByteView> views = mb_batch(data);
  std::vector<Sha1::Digest> out(views.size());
  for (auto _ : state) {
    simd::sha1_many_at(level, views.data(), views.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(cpu::isa_level_name(level));
}
BENCHMARK(BM_Sha1MultiBuffer)->Arg(0)->Arg(1)->Arg(2);

void BM_Sha256MultiBuffer(benchmark::State& state) {
  const auto level = static_cast<cpu::IsaLevel>(state.range(0));
  if (level > cpu::detected_isa_level()) {
    state.SkipWithError("ISA level not available on this host");
    return;
  }
  const Bytes data = bench_data(64 * 8192);
  const std::vector<ByteView> views = mb_batch(data);
  std::vector<Sha256::Digest> out(views.size());
  for (auto _ : state) {
    simd::sha256_many_at(level, views.data(), views.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(cpu::isa_level_name(level));
}
BENCHMARK(BM_Sha256MultiBuffer)->Arg(0)->Arg(1)->Arg(2);

void BM_LzssCompress(benchmark::State& state) {
  // range(0): 0 = incompressible noise, 1 = LZ-friendly text extents.
  const bool text = state.range(0) != 0;
  Bytes data;
  if (text) {
    data = workload::materialize(std::vector<workload::Extent>{
        workload::Extent{9, 4u << 20, workload::ExtentKind::kText}});
  } else {
    data = bench_data(4 << 20);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Lzss::compress(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(text ? "text" : "noise");
}
BENCHMARK(BM_LzssCompress)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_LzssDecompress(benchmark::State& state) {
  const Bytes data = workload::materialize(std::vector<workload::Extent>{
      workload::Extent{10, 4u << 20, workload::ExtentKind::kText}});
  const Bytes packed = Lzss::compress(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Lzss::decompress(packed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_LzssDecompress)->Unit(benchmark::kMillisecond);

void BM_PipelinePrepare(benchmark::State& state) {
  const Bytes data = bench_data(8 << 20);
  GearChunker chunker;
  StreamPipeline pipeline(chunker, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(std::to_string(state.range(0)) + " workers");
}
BENCHMARK(BM_PipelinePrepare)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Self-timed SIMD checks (always run, independent of --benchmark_filter).
//
// These produce the boolean `bench.simd.check.*` gauges the ctest gate
// compares against the committed BENCH_simd_hotloop.json. The booleans are
// designed to be portable across machines of the same ISA class; the raw
// MB/s go under system.bench.* (excluded from gating by convention).
// ---------------------------------------------------------------------------

using BenchClock = std::chrono::steady_clock;

/// Best-of-3 wall time of `fn`, in seconds.
template <typename Fn>
double best_seconds(Fn&& fn) {
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = BenchClock::now();
    fn();
    const double s =
        std::chrono::duration<double>(BenchClock::now() - t0).count();
    if (s < best) best = s;
  }
  return best;
}

double mb_per_s(std::size_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / 1e6 / seconds : 0.0;
}

void run_simd_checks() {
  auto& reg = obs::MetricsRegistry::global();
  const cpu::IsaLevel detected = cpu::detected_isa_level();
  reg.gauge("system.bench.simd.detected_isa_level")
      .set(static_cast<double>(detected));

  // --- Gear scan: scalar kernel vs whatever production dispatch picked.
  const Bytes data = bench_data(4 << 20);
  const std::uint64_t* table = GearChunker::table().data();
  const std::uint64_t mask = ~0ull;  // never hits: pure scan throughput
  bool boundaries_identical = true;

  std::uint64_t h_scalar = 0;
  std::size_t b_scalar = 0;
  const double t_gear_scalar = best_seconds([&] {
    h_scalar = 0;
    b_scalar = simd::gear_scan_scalar(data.data(), 0, data.size(), mask,
                                      h_scalar, table);
  });
  const simd::GearScanFn active = simd::active_gear_scan();
  std::uint64_t h_active = 0;
  std::size_t b_active = 0;
  const double t_gear_active = best_seconds([&] {
    h_active = 0;
    b_active = active(data.data(), 0, data.size(), mask, h_active, table);
  });
  boundaries_identical = b_active == b_scalar && h_active == h_scalar;
  // A boundary-rich mask as well (realistic ~2 KiB spacing), where the
  // kernels restart per boundary.
  {
    std::uint64_t h1 = 0, h2 = 0;
    std::size_t p1 = 0, p2 = 0;
    while (p1 < data.size() && p2 < data.size()) {
      p1 = simd::gear_scan_scalar(data.data(), p1, data.size(), 0x7FF, h1,
                                  table);
      p2 = active(data.data(), p2, data.size(), 0x7FF, h2, table);
      if (p1 != p2 || h1 != h2) {
        boundaries_identical = false;
        break;
      }
      if (p1 == simd::kNoBoundary) break;
    }
  }
  const double gear_speedup =
      t_gear_active > 0 ? t_gear_scalar / t_gear_active : 0.0;
  reg.gauge("system.bench.simd.gear_scalar_mb_s")
      .set(mb_per_s(data.size(), t_gear_scalar));
  reg.gauge("system.bench.simd.gear_active_mb_s")
      .set(mb_per_s(data.size(), t_gear_active));
  reg.gauge("bench.simd.gear_speedup").set(gear_speedup);
  // The exact gear recurrence is table-load bound: the honest gate is
  // "dispatch never ships a slower kernel", not a speedup floor
  // (see DESIGN.md "SIMD hot loops").
  reg.gauge("bench.simd.check.gear_active_not_slower_than_0_8x")
      .set(gear_speedup >= 0.8 ? 1 : 0);
  reg.gauge("bench.simd.check.boundaries_identical")
      .set(boundaries_identical ? 1 : 0);

  // --- Multi-buffer SHA: scalar one-message loop vs batched dispatch.
  const std::vector<ByteView> views = mb_batch(data);  // 512 x 8 KiB
  const std::size_t batch_bytes = views.size() * 8192;
  bool digests_identical = true;

  std::vector<Sha1::Digest> ref1(views.size()), out1(views.size());
  const double t_sha1_scalar = best_seconds([&] {
    for (std::size_t i = 0; i < views.size(); ++i) {
      ref1[i] = Sha1::hash(views[i]);
    }
  });
  const double t_sha1_mb = best_seconds([&] {
    simd::sha1_many(views.data(), views.size(), out1.data());
  });
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (out1[i] != ref1[i]) digests_identical = false;
  }

  std::vector<Sha256::Digest> ref256(views.size()), out256(views.size());
  const double t_sha256_scalar = best_seconds([&] {
    for (std::size_t i = 0; i < views.size(); ++i) {
      ref256[i] = Sha256::hash(views[i]);
    }
  });
  const double t_sha256_mb = best_seconds([&] {
    simd::sha256_many(views.data(), views.size(), out256.data());
  });
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (out256[i] != ref256[i]) digests_identical = false;
  }

  const double sha1_speedup = t_sha1_mb > 0 ? t_sha1_scalar / t_sha1_mb : 0.0;
  const double sha256_speedup =
      t_sha256_mb > 0 ? t_sha256_scalar / t_sha256_mb : 0.0;
  reg.gauge("system.bench.simd.sha1_scalar_mb_s")
      .set(mb_per_s(batch_bytes, t_sha1_scalar));
  reg.gauge("system.bench.simd.sha1_mb_mb_s")
      .set(mb_per_s(batch_bytes, t_sha1_mb));
  reg.gauge("system.bench.simd.sha256_scalar_mb_s")
      .set(mb_per_s(batch_bytes, t_sha256_scalar));
  reg.gauge("system.bench.simd.sha256_mb_mb_s")
      .set(mb_per_s(batch_bytes, t_sha256_mb));
  reg.gauge("bench.simd.sha1_mb_speedup").set(sha1_speedup);
  reg.gauge("bench.simd.sha256_mb_speedup").set(sha256_speedup);
  // On any host with SSE4.1+ the 4/8-lane kernels clear 1.5x with a wide
  // margin; a scalar-only host — or a run pinned down with
  // DEFRAG_FORCE_SCALAR=1 — passes vacuously (there is nothing to gate;
  // identity checks above still run).
  const bool has_simd = cpu::active_isa_level() >= cpu::IsaLevel::kSse41;
  reg.gauge("bench.simd.check.sha1_mb_ge_1_5x")
      .set(!has_simd || sha1_speedup >= 1.5 ? 1 : 0);
  reg.gauge("bench.simd.check.sha256_mb_ge_1_5x")
      .set(!has_simd || sha256_speedup >= 1.5 ? 1 : 0);
  reg.gauge("bench.simd.check.digests_identical")
      .set(digests_identical ? 1 : 0);

  std::printf("simd checks: isa=%s gear %.0f->%.0f MB/s (%.2fx)  "
              "sha1 %.0f->%.0f MB/s (%.2fx)  sha256 %.0f->%.0f MB/s (%.2fx)  "
              "identical=%d/%d\n",
              cpu::isa_level_name(detected),
              mb_per_s(data.size(), t_gear_scalar),
              mb_per_s(data.size(), t_gear_active), gear_speedup,
              mb_per_s(batch_bytes, t_sha1_scalar),
              mb_per_s(batch_bytes, t_sha1_mb), sha1_speedup,
              mb_per_s(batch_bytes, t_sha256_scalar),
              mb_per_s(batch_bytes, t_sha256_mb), sha256_speedup,
              boundaries_identical ? 1 : 0, digests_identical ? 1 : 0);
}

}  // namespace
}  // namespace defrag

int main(int argc, char** argv) {
  defrag::bench::resolve_scale();  // arms the DEFRAG_METRICS_JSON exit hook
  defrag::run_simd_checks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Microbenchmarks (google-benchmark): chunking algorithms, fingerprinting,
// and the parallel preparation pipeline. These measure real wall-clock cost
// of the substrate, independent of the simulated-disk experiments.
#include <benchmark/benchmark.h>

#include "chunking/fixed.h"
#include "chunking/gear.h"
#include "chunking/rabin.h"
#include "common/rng.h"
#include "common/sha1.h"
#include "common/sha256.h"
#include "compress/lzss.h"
#include "dedup/pipeline.h"
#include "workload/content.h"

namespace defrag {
namespace {

Bytes bench_data(std::size_t n) {
  Bytes b(n);
  Xoshiro256 rng(42);
  rng.fill(b);
  return b;
}

void BM_RabinChunking(benchmark::State& state) {
  const Bytes data = bench_data(8 << 20);
  RabinChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RabinChunking)->Unit(benchmark::kMillisecond);

void BM_GearChunking(benchmark::State& state) {
  const Bytes data = bench_data(8 << 20);
  GearChunker chunker({}, state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(state.range(0) ? "normalized" : "plain");
}
BENCHMARK(BM_GearChunking)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FixedChunking(benchmark::State& state) {
  const Bytes data = bench_data(8 << 20);
  FixedChunker chunker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.split(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_FixedChunking)->Unit(benchmark::kMillisecond);

void BM_Sha1(benchmark::State& state) {
  const Bytes data = bench_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(4096)->Arg(8192)->Arg(65536)->Arg(1 << 20);

void BM_Sha256(benchmark::State& state) {
  const Bytes data = bench_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(8192)->Arg(1 << 20);

void BM_LzssCompress(benchmark::State& state) {
  // range(0): 0 = incompressible noise, 1 = LZ-friendly text extents.
  const bool text = state.range(0) != 0;
  Bytes data;
  if (text) {
    data = workload::materialize(std::vector<workload::Extent>{
        workload::Extent{9, 4u << 20, workload::ExtentKind::kText}});
  } else {
    data = bench_data(4 << 20);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Lzss::compress(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(text ? "text" : "noise");
}
BENCHMARK(BM_LzssCompress)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_LzssDecompress(benchmark::State& state) {
  const Bytes data = workload::materialize(std::vector<workload::Extent>{
      workload::Extent{10, 4u << 20, workload::ExtentKind::kText}});
  const Bytes packed = Lzss::compress(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Lzss::decompress(packed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_LzssDecompress)->Unit(benchmark::kMillisecond);

void BM_PipelinePrepare(benchmark::State& state) {
  const Bytes data = bench_data(8 << 20);
  GearChunker chunker;
  StreamPipeline pipeline(chunker, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.SetLabel(std::to_string(state.range(0)) + " workers");
}
BENCHMARK(BM_PipelinePrepare)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace defrag

BENCHMARK_MAIN();

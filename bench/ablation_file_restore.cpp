// Ablation — single-file restore latency (the paper's Fig. 1 made
// empirical): after N generations, restore every file of the latest backup
// individually and compare the fragment-count and latency distributions
// under DDFS vs DeFrag.
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "core/dedup_system.h"
#include "harness.h"
#include "workload/backup_series.h"

int main() {
  using namespace defrag;
  auto scale = bench::resolve_scale();
  scale.single_user_generations =
      std::min<std::uint32_t>(scale.single_user_generations, 14);
  bench::print_header(
      "Ablation — single-file restore latency (Fig. 1, empirically)",
      "A file split over N containers costs ~N seeks + N container reads "
      "to fetch; whole-backup restores amortize this, single-file restores "
      "pay it in full.",
      scale);

  Table t({"engine", "files", "mean_frags", "p90_frags", "mean_ms",
           "p90_ms", "worst_ms"});
  double ddfs_p90 = 0.0, defrag_p90 = 0.0;

  for (EngineKind kind : {EngineKind::kDdfs, EngineKind::kDefrag}) {
    DedupSystem sys(kind, bench::paper_engine_config());
    workload::SingleUserSeries series(scale.seed, scale.fs);
    workload::Backup last;
    for (std::uint32_t g = 1; g <= scale.single_user_generations; ++g) {
      last = series.next();
      sys.ingest_backup(last);
    }

    RunningStats frags, latency;
    std::vector<double> frag_values, latencies_ms;
    for (const auto& f : last.files) {
      const FileRestoreResult r =
          sys.restore_file(last.generation, f.path, nullptr);
      frags.add(static_cast<double>(r.container_loads));
      frag_values.push_back(static_cast<double>(r.container_loads));
      latency.add(r.sim_seconds * 1e3);
      latencies_ms.push_back(r.sim_seconds * 1e3);
    }
    const double p90_ms = percentile(latencies_ms, 0.9);
    t.add_row({sys.engine().name(),
               Table::integer(static_cast<long long>(last.files.size())),
               Table::num(frags.mean(), 2),
               Table::num(percentile(frag_values, 0.9), 1),
               Table::num(latency.mean(), 2), Table::num(p90_ms, 2),
               Table::num(latency.max(), 2)});
    if (kind == EngineKind::kDdfs) ddfs_p90 = p90_ms;
    if (kind == EngineKind::kDefrag) defrag_p90 = p90_ms;
  }
  t.print();
  std::printf("\n");

  bench::check_shape("DeFrag improves tail (p90) file-restore latency",
                     defrag_p90 < ddfs_p90, defrag_p90, ddfs_p90);
  return 0;
}

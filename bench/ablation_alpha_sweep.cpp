// Ablation — the alpha knob (not a paper figure; the paper fixes alpha=0.1
// "due to space restrictions"). Sweeps the SPL threshold and reports the
// locality/compression trade-off DeFrag's design hinges on.
#include <cstdio>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace defrag;
  auto scale = bench::resolve_scale();
  // The sweep runs the single-user series once per alpha; trim generations
  // to keep the sweep affordable.
  scale.single_user_generations =
      std::min<std::uint32_t>(scale.single_user_generations, 12);
  bench::print_header(
      "Ablation — alpha sweep (SPL rewrite threshold)",
      "alpha=0 is exact dedup (max fragmentation); alpha>1 rewrites every "
      "cross-segment duplicate (no fragmentation, worst compression).",
      scale);

  Table t({"alpha", "compression_x", "rewritten_MiB", "tail_tput_MB_s",
           "restore_MB_s", "restore_loads"});

  double prev_compression = 1e18;
  double prev_restore = 0.0;
  bool compression_monotone = true;
  bool restore_monotone = true;

  for (double alpha : {0.0, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0, 1.2}) {
    const auto run = bench::run_single_user(
        EngineKind::kDefrag, scale, /*restore_all=*/true,
        [&](EngineConfig& cfg) { cfg.defrag_alpha = alpha; });

    std::uint64_t rewritten = 0;
    for (const auto& b : run.backups) rewritten += b.rewritten_bytes;
    double tail_tput = 0.0;
    const std::size_t half = run.backups.size() / 2;
    for (std::size_t i = half; i < run.backups.size(); ++i) {
      tail_tput += run.backups[i].throughput_mb_s();
    }
    tail_tput /= static_cast<double>(run.backups.size() - half);
    const double last_restore = run.restores.back().read_mb_s();
    const double last_loads =
        static_cast<double>(run.restores.back().container_loads);

    t.add_row({Table::num(alpha, 2), Table::num(run.compression_ratio, 2),
               Table::num(static_cast<double>(rewritten) / 1048576.0, 1),
               Table::num(tail_tput, 1), Table::num(last_restore, 1),
               Table::num(last_loads, 0)});

    // Tolerate small non-monotonicity from CDC noise (2%).
    if (run.compression_ratio > prev_compression * 1.02) {
      compression_monotone = false;
    }
    if (last_restore < prev_restore * 0.95) restore_monotone = false;
    prev_compression = run.compression_ratio;
    prev_restore = last_restore;
  }
  t.print();
  std::printf("\n");

  bench::check_shape("compression never improves as alpha grows",
                     compression_monotone, compression_monotone ? 1 : 0, 1);
  bench::check_shape("restore bandwidth never collapses as alpha grows",
                     restore_monotone, restore_monotone ? 1 : 0, 1);
  return 0;
}

// Fig. 6 — data read (restore) performance of DeFrag vs DDFS-Like when
// reconstructing backup generations 1 through 20.
//
// Paper shape: DeFrag's restore bandwidth exceeds DDFS-Like's because its
// rewrites keep each generation's chunks in fewer containers.
#include <cstdio>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace defrag;
  const auto scale = bench::resolve_scale();
  bench::print_header(
      "Fig. 6 — data read performance, restoring generations 1..N",
      "Restore walks the recipe; every distinct container is a seek plus a "
      "container transfer. Fewer fragments -> higher read MB/s.",
      scale);

  const auto ddfs =
      bench::run_single_user(EngineKind::kDdfs, scale, /*restore_all=*/true);
  const auto defrag =
      bench::run_single_user(EngineKind::kDefrag, scale, /*restore_all=*/true);

  Table t({"generation", "DeFrag_MB_s", "DDFS_MB_s", "DeFrag_loads",
           "DDFS_loads"});
  const std::size_t n = defrag.restores.size();
  for (std::size_t i = 0; i < n; ++i) {
    t.add_row({Table::integer(defrag.restores[i].generation),
               Table::num(defrag.restores[i].read_mb_s(), 1),
               Table::num(ddfs.restores[i].read_mb_s(), 1),
               Table::integer(static_cast<long long>(
                   defrag.restores[i].container_loads)),
               Table::integer(static_cast<long long>(
                   ddfs.restores[i].container_loads))});
  }
  t.print();
  std::printf("\n");

  double d_mean = 0.0, f_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    d_mean += ddfs.restores[i].read_mb_s();
    f_mean += defrag.restores[i].read_mb_s();
  }
  d_mean /= static_cast<double>(n);
  f_mean /= static_cast<double>(n);
  bench::check_shape("DeFrag mean restore bandwidth above DDFS",
                     f_mean > d_mean, f_mean, d_mean);

  // The gap should widen with fragmentation: compare the last generation.
  bench::check_shape("DeFrag beats DDFS on the most fragmented generation",
                     defrag.restores.back().read_mb_s() >
                         ddfs.restores.back().read_mb_s(),
                     defrag.restores.back().read_mb_s(),
                     ddfs.restores.back().read_mb_s());
  std::printf(
      "compression paid for it: DDFS %.2fx vs DeFrag %.2fx (alpha=0.1)\n",
      ddfs.compression_ratio, defrag.compression_ratio);
  return 0;
}

// Fig. 5 — deduplication efficiency of DeFrag vs SiLo-Like over the
// 66-backup five-user dataset.
//
// Paper shape: both keep some redundant data (efficiency < 1), but by
// generation 66 SiLo has ~12% of redundant data not removed while DeFrag
// has only ~4% — DeFrag pays far less compression for comparable
// throughput.
#include <cstdio>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace defrag;
  const auto scale = bench::resolve_scale();
  bench::print_header(
      "Fig. 5 — deduplication efficiency comparison (66 backups, 5 users)",
      "Redundant data kept: SiLo misses duplicates in unprobed blocks; "
      "DeFrag deliberately rewrites low-SPL duplicates. DeFrag keeps less.",
      scale);

  const auto silo = bench::run_multi_user(EngineKind::kSilo, scale);
  const auto defrag = bench::run_multi_user(EngineKind::kDefrag, scale);

  // Cumulative "redundant data not removed" fraction, as the paper reports
  // at generation 66 (12% SiLo vs 4% DeFrag).
  Table t({"generation", "DeFrag_eff", "SiLo_eff", "DeFrag_kept_%",
           "SiLo_kept_%"});
  std::uint64_t d_kept = 0, s_kept = 0, redundant = 0;
  const std::size_t n = defrag.backups.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& d = defrag.backups[i];
    const auto& s = silo.backups[i];
    d_kept += d.rewritten_bytes + d.missed_dup_bytes;
    s_kept += s.missed_dup_bytes;
    redundant += d.redundant_bytes;
    const double d_pct =
        redundant ? 100.0 * static_cast<double>(d_kept) / static_cast<double>(redundant) : 0.0;
    const double s_pct =
        redundant ? 100.0 * static_cast<double>(s_kept) / static_cast<double>(redundant) : 0.0;
    t.add_row({Table::integer(d.generation), Table::num(d.dedup_efficiency(), 4),
               Table::num(s.dedup_efficiency(), 4), Table::num(d_pct, 2),
               Table::num(s_pct, 2)});
  }
  t.print();
  std::printf("\n");

  const double d_final =
      redundant ? static_cast<double>(d_kept) / static_cast<double>(redundant) : 0.0;
  const double s_final =
      redundant ? static_cast<double>(s_kept) / static_cast<double>(redundant) : 0.0;

  bench::check_shape("DeFrag keeps less redundant data than SiLo",
                     d_final < s_final, d_final * 100, s_final * 100);
  bench::check_shape("both keep a nonzero share (near-exact by design)",
                     d_final > 0.0 && s_final > 0.0, d_final * 100,
                     s_final * 100);
  std::printf(
      "paper anchor at final generation: SiLo ~12%% kept, DeFrag ~4%% kept; "
      "measured: SiLo %.1f%%, DeFrag %.1f%%\n",
      s_final * 100, d_final * 100);
  return 0;
}

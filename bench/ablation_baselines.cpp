// Ablation — the full baseline field: every engine this library ships, on
// the same single-user series. One table per run; the qualitative layout
// of the dedup design space (exact vs near-exact, rewriting vs not).
#include <cstdio>

#include "common/table.h"
#include "core/dedup_system.h"
#include "harness.h"
#include "workload/backup_series.h"

int main() {
  using namespace defrag;
  auto scale = bench::resolve_scale();
  scale.single_user_generations =
      std::min<std::uint32_t>(scale.single_user_generations, 14);
  bench::print_header(
      "Ablation — all five engines on one workload",
      "DDFS (exact), Sparse-Indexing & SiLo (near-exact, RAM-light), "
      "CBR & DeFrag (rewriting). Columns show what each design buys.",
      scale);

  Table t({"engine", "compression_x", "cum_efficiency", "tail_tput_MB_s",
           "restore_MB_s", "total_seeks"});

  double ddfs_eff = 0.0, defrag_restore = 0.0, ddfs_restore = 0.0;

  for (EngineKind kind :
       {EngineKind::kDdfs, EngineKind::kSparse, EngineKind::kSilo,
        EngineKind::kCbr, EngineKind::kDefrag}) {
    DedupSystem sys(kind, bench::paper_engine_config());
    workload::SingleUserSeries series(scale.seed, scale.fs);
    double tail = 0.0;
    std::uint32_t tail_n = 0;
    std::uint64_t seeks = 0;
    for (std::uint32_t g = 1; g <= scale.single_user_generations; ++g) {
      const BackupResult r = sys.ingest_as(g, series.next().stream);
      seeks += r.io.seeks;
      if (g > scale.single_user_generations / 2) {
        tail += r.throughput_mb_s();
        ++tail_n;
      }
    }
    const RestoreResult rr = sys.restore(scale.single_user_generations);
    t.add_row({sys.engine().name(), Table::num(sys.compression_ratio(), 2),
               Table::num(sys.cumulative_dedup_efficiency(), 4),
               Table::num(tail / tail_n, 1), Table::num(rr.read_mb_s(), 1),
               Table::integer(static_cast<long long>(seeks))});
    if (kind == EngineKind::kDdfs) {
      ddfs_eff = sys.cumulative_dedup_efficiency();
      ddfs_restore = rr.read_mb_s();
    }
    if (kind == EngineKind::kDefrag) defrag_restore = rr.read_mb_s();
  }
  t.print();
  std::printf("\n");

  bench::check_shape("exact engine removes all redundancy",
                     ddfs_eff > 0.999999, ddfs_eff, 1.0);
  bench::check_shape("DeFrag restores faster than exact dedup",
                     defrag_restore > ddfs_restore, defrag_restore,
                     ddfs_restore);
  return 0;
}

// Ablation — rewrite policies: DeFrag's segment-normalized SPL rule vs the
// container-normalized, budget-capped CBR rule (paper ref. [5]) vs no
// rewriting at all, on the same workload.
#include <cstdio>

#include "common/table.h"
#include "core/dedup_system.h"
#include "harness.h"
#include "workload/backup_series.h"

int main() {
  using namespace defrag;
  auto scale = bench::resolve_scale();
  scale.single_user_generations =
      std::min<std::uint32_t>(scale.single_user_generations, 14);
  bench::print_header(
      "Ablation — rewrite policies (none / CBR-Like / DeFrag)",
      "Both rewriters trade compression for locality; they differ in what "
      "they normalize by (container utilization vs segment SPL) and whether "
      "the loss is budget-capped per backup.",
      scale);

  Table t({"policy", "compression_x", "rewritten_MiB", "tail_tput_MB_s",
           "restore_MB_s", "restore_loads"});

  struct Row {
    double compression, restore;
  };
  std::vector<Row> rows;

  for (EngineKind kind :
       {EngineKind::kDdfs, EngineKind::kCbr, EngineKind::kDefrag}) {
    DedupSystem sys(kind, bench::paper_engine_config());
    workload::SingleUserSeries series(scale.seed, scale.fs);
    std::uint64_t rewritten = 0;
    double tail = 0.0;
    std::uint32_t tail_n = 0;
    for (std::uint32_t g = 1; g <= scale.single_user_generations; ++g) {
      const BackupResult r = sys.ingest_as(g, series.next().stream);
      rewritten += r.rewritten_bytes;
      if (g > scale.single_user_generations / 2) {
        tail += r.throughput_mb_s();
        ++tail_n;
      }
    }
    const RestoreResult rr = sys.restore(scale.single_user_generations);
    t.add_row({sys.engine().name(), Table::num(sys.compression_ratio(), 2),
               Table::num(static_cast<double>(rewritten) / 1048576.0, 1),
               Table::num(tail / tail_n, 1), Table::num(rr.read_mb_s(), 1),
               Table::integer(static_cast<long long>(rr.container_loads))});
    rows.push_back(Row{sys.compression_ratio(), rr.read_mb_s()});
  }
  t.print();
  std::printf("\n");

  bench::check_shape("both rewriters beat no-rewrite on restore bandwidth",
                     rows[1].restore > rows[0].restore &&
                         rows[2].restore > rows[0].restore,
                     rows[2].restore, rows[0].restore);
  bench::check_shape("no-rewrite keeps the best compression",
                     rows[0].compression >= rows[1].compression &&
                         rows[0].compression >= rows[2].compression,
                     rows[0].compression, rows[2].compression);
  return 0;
}

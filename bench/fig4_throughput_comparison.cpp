// Fig. 4 — deduplication throughput of DeFrag vs DDFS-Like vs SiLo-Like
// over the 66-backup five-user dataset.
//
// Paper shape: DDFS-Like degrades well below the others; DeFrag is
// comparable to SiLo overall and beats it on high-locality generations
// (1-5 and the fresh-epoch generations 41-42).
#include <cstdio>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace defrag;
  const auto scale = bench::resolve_scale();
  bench::print_header(
      "Fig. 4 — deduplication throughput comparison (66 backups, 5 users)",
      "DeFrag recovers the locality DDFS loses; its throughput tracks "
      "SiLo's and exceeds it when the stream has strong spatial locality.",
      scale);

  const auto ddfs = bench::run_multi_user(EngineKind::kDdfs, scale);
  const auto silo = bench::run_multi_user(EngineKind::kSilo, scale);
  const auto defrag = bench::run_multi_user(EngineKind::kDefrag, scale);

  Table t({"generation", "DeFrag_MB_s", "DDFS_MB_s", "SiLo_MB_s"});
  const std::size_t n = defrag.backups.size();
  for (std::size_t i = 0; i < n; ++i) {
    t.add_row({Table::integer(defrag.backups[i].generation),
               Table::num(defrag.backups[i].throughput_mb_s(), 1),
               Table::num(ddfs.backups[i].throughput_mb_s(), 1),
               Table::num(silo.backups[i].throughput_mb_s(), 1)});
  }
  t.print();
  std::printf("\n");

  // "Steady state" = the final third of the series, where placement has
  // fully de-linearized (the paper's figures carry real-world history from
  // generation 1; our synthetic store starts pristine).
  auto mean_tail = [&](const bench::SeriesRun& r) {
    double sum = 0.0;
    const std::size_t from = r.backups.size() * 2 / 3;
    for (std::size_t i = from; i < r.backups.size(); ++i) {
      sum += r.backups[i].throughput_mb_s();
    }
    return sum / static_cast<double>(r.backups.size() - from);
  };

  const double d_tail = mean_tail(defrag);
  const double ddfs_tail = mean_tail(ddfs);
  const double silo_tail = mean_tail(silo);

  bench::check_shape("DeFrag throughput well above DDFS in the steady state",
                     d_tail > 1.2 * ddfs_tail, d_tail, ddfs_tail);
  bench::check_shape("DeFrag in SiLo's league (within ~35%), DDFS is not",
                     d_tail > 0.65 * silo_tail && ddfs_tail < d_tail, d_tail,
                     silo_tail);

  // High-locality generations: early fresh backups (per-user firsts, 1-5)
  // and the fresh-epoch backups 41-42 where most data is new.
  if (n >= 42) {
    int defrag_wins = 0, samples = 0;
    for (std::size_t i : {0u, 1u, 2u, 3u, 4u, 40u, 41u}) {
      if (i >= n) continue;
      ++samples;
      defrag_wins += defrag.backups[i].throughput_mb_s() >=
                     silo.backups[i].throughput_mb_s();
    }
    bench::check_shape("DeFrag >= SiLo on most high-locality generations",
                       defrag_wins * 2 > samples,
                       static_cast<double>(defrag_wins),
                       static_cast<double>(samples));
  }
  return 0;
}

// Fig. 3 — the degradation of SiLo's deduplication efficiency over 20
// backup generations of a single user's file system.
//
// SiLo only dedups against the blocks its similarity probes load. As
// placement de-linearizes, a segment's duplicates spread over more blocks
// than the probed ones, so efficiency (removed / truly-redundant) decays.
#include <cstdio>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace defrag;
  const auto scale = bench::resolve_scale();
  bench::print_header(
      "Fig. 3 — SiLo-Like deduplication efficiency vs backup generation",
      "Weakening duplicate locality leaves redundant chunks in blocks the "
      "similarity probe never loads; efficiency decays below 1.0.",
      scale);

  const auto run = bench::run_single_user(EngineKind::kSilo, scale);

  Table t({"generation", "efficiency", "removed_MiB", "missed_MiB",
           "redundant_MiB"});
  for (const auto& b : run.backups) {
    t.add_row({Table::integer(b.generation),
               Table::num(b.dedup_efficiency(), 4),
               Table::num(static_cast<double>(b.removed_bytes) / 1048576.0, 2),
               Table::num(static_cast<double>(b.missed_dup_bytes) / 1048576.0, 2),
               Table::num(static_cast<double>(b.redundant_bytes) / 1048576.0, 2)});
  }
  t.print();
  std::printf("\n");

  // Skip generation 1 (no redundancy: efficiency trivially 1).
  double early = 0.0, late = 0.0;
  const std::size_t n = run.backups.size();
  std::size_t early_n = 0, late_n = 0;
  for (std::size_t i = 1; i < n / 2; ++i, ++early_n) {
    early += run.backups[i].dedup_efficiency();
  }
  for (std::size_t i = n / 2; i < n; ++i, ++late_n) {
    late += run.backups[i].dedup_efficiency();
  }
  early /= static_cast<double>(early_n);
  late /= static_cast<double>(late_n);
  bench::check_shape("efficiency decays with generations", late < early, late,
                     early);
  bench::check_shape("final efficiency below 1.0",
                     run.backups.back().dedup_efficiency() < 0.999,
                     run.backups.back().dedup_efficiency(), 1.0);
  return 0;
}

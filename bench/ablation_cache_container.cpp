// Ablation — container size and locality-cache size sensitivity of the
// DDFS baseline (the substrate both the paper's problem and DeFrag's fix
// live on).
#include <cstdio>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace defrag;
  auto scale = bench::resolve_scale();
  scale.single_user_generations =
      std::min<std::uint32_t>(scale.single_user_generations, 10);
  bench::print_header(
      "Ablation — container size & metadata-cache size (DDFS-Like)",
      "Bigger containers amortize seeks but amplify restore reads; a bigger "
      "locality cache hides fragmentation until it no longer fits.",
      scale);

  std::printf("-- container size sweep (metadata cache fixed at 16) --\n");
  Table tc({"container_MiB", "tail_tput_MB_s", "restore_MB_s",
            "restore_loads"});
  for (std::uint64_t mib : {1ull, 2ull, 4ull, 8ull}) {
    const auto run = bench::run_single_user(
        EngineKind::kDdfs, scale, /*restore_all=*/true,
        [&](EngineConfig& cfg) { cfg.container_bytes = mib << 20; });
    double tail = 0.0;
    const std::size_t half = run.backups.size() / 2;
    for (std::size_t i = half; i < run.backups.size(); ++i) {
      tail += run.backups[i].throughput_mb_s();
    }
    tail /= static_cast<double>(run.backups.size() - half);
    tc.add_row({Table::integer(static_cast<long long>(mib)),
                Table::num(tail, 1),
                Table::num(run.restores.back().read_mb_s(), 1),
                Table::integer(static_cast<long long>(
                    run.restores.back().container_loads))});
  }
  tc.print();

  std::printf("\n-- metadata cache sweep (container fixed at 4 MiB) --\n");
  Table tm({"cache_containers", "tail_tput_MB_s", "total_seeks"});
  double tiny_cache_tput = 0.0, big_cache_tput = 0.0;
  for (std::size_t slots : {2ull, 4ull, 8ull, 16ull, 32ull, 64ull}) {
    const auto run = bench::run_single_user(
        EngineKind::kDdfs, scale, /*restore_all=*/false,
        [&](EngineConfig& cfg) { cfg.metadata_cache_containers = slots; });
    double tail = 0.0;
    std::uint64_t seeks = 0;
    const std::size_t half = run.backups.size() / 2;
    for (std::size_t i = half; i < run.backups.size(); ++i) {
      tail += run.backups[i].throughput_mb_s();
    }
    for (const auto& b : run.backups) seeks += b.io.seeks;
    tail /= static_cast<double>(run.backups.size() - half);
    tm.add_row({Table::integer(static_cast<long long>(slots)),
                Table::num(tail, 1),
                Table::integer(static_cast<long long>(seeks))});
    if (slots == 2) tiny_cache_tput = tail;
    if (slots == 64) big_cache_tput = tail;
  }
  tm.print();
  std::printf("\n");

  bench::check_shape("larger locality cache lifts steady-state throughput",
                     big_cache_tput > tiny_cache_tput, big_cache_tput,
                     tiny_cache_tput);
  return 0;
}

// Ablation — restore strategies x engines: shows DeFrag's layout win is
// orthogonal to restore-side buffering (it helps every strategy), and
// quantifies the strategies against each other on fragmented recipes.
#include <cstdio>

#include "common/table.h"
#include "core/dedup_system.h"
#include "dedup/restore_strategies.h"
#include "harness.h"
#include "workload/backup_series.h"

int main() {
  using namespace defrag;
  auto scale = bench::resolve_scale();
  scale.single_user_generations =
      std::min<std::uint32_t>(scale.single_user_generations, 12);
  bench::print_header(
      "Ablation — restore strategy x engine (most fragmented generation)",
      "Container-LRU pays per re-fetched container; chunk-LRU pays per "
      "chunk (Fig. 1's worst case); forward assembly pays once per "
      "(window, container). Better layout helps all three.",
      scale);

  Table t({"engine", "strategy", "read_MB_s", "loads", "seeks"});
  double ddfs_faa = 0.0, defrag_faa = 0.0;
  double ddfs_lru = 0.0, defrag_lru = 0.0;

  for (EngineKind kind : {EngineKind::kDdfs, EngineKind::kDefrag}) {
    DedupSystem sys(kind, bench::paper_engine_config());
    workload::SingleUserSeries series(scale.seed, scale.fs);
    for (std::uint32_t g = 1; g <= scale.single_user_generations; ++g) {
      sys.ingest_as(g, series.next().stream);
    }
    const auto& base = dynamic_cast<const EngineBase&>(sys.engine());
    const Recipe& recipe =
        base.recipe_store().get(scale.single_user_generations);

    for (RestoreStrategy strategy :
         {RestoreStrategy::kContainerLru, RestoreStrategy::kChunkLru,
          RestoreStrategy::kForwardAssembly}) {
      RestoreOptions opt;
      opt.strategy = strategy;
      opt.cache_containers = bench::paper_engine_config().restore_cache_containers;
      const RestoreResult r = restore_with_strategy(
          base.container_store(), recipe,
          bench::paper_engine_config().disk, opt, nullptr);
      t.add_row({sys.engine().name(), to_string(strategy),
                 Table::num(r.read_mb_s(), 1),
                 Table::integer(static_cast<long long>(r.container_loads)),
                 Table::integer(static_cast<long long>(r.io.seeks))});
      if (strategy == RestoreStrategy::kForwardAssembly) {
        (kind == EngineKind::kDdfs ? ddfs_faa : defrag_faa) = r.read_mb_s();
      }
      if (strategy == RestoreStrategy::kContainerLru) {
        (kind == EngineKind::kDdfs ? ddfs_lru : defrag_lru) = r.read_mb_s();
      }
    }
  }
  t.print();
  std::printf("\n");

  bench::check_shape("DeFrag layout helps LRU restores",
                     defrag_lru > ddfs_lru, defrag_lru, ddfs_lru);
  // Forward assembly reads each needed container once per window, so it
  // absorbs most of the fragmentation penalty by itself — rewriting and
  // assembly-area buffering are substitutes here, not complements. The
  // honest shape: the DDFS-vs-DeFrag gap narrows under forward assembly.
  const double gap_lru = defrag_lru / ddfs_lru;
  const double gap_faa = defrag_faa / ddfs_faa;
  bench::check_shape("forward assembly narrows the layout gap", gap_faa < gap_lru,
                     gap_faa, gap_lru);
  return 0;
}

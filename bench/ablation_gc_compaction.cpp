// Ablation — offline GC + re-linearizing compaction: retire old
// generations, reclaim their garbage, and measure the restore speedup the
// newest-recipe-first copy order gives the surviving backups.
#include <cstdio>

#include "common/table.h"
#include "common/units.h"
#include "core/dedup_system.h"
#include "dedup/restore_strategies.h"
#include "harness.h"
#include "storage/compactor.h"
#include "workload/backup_series.h"

int main() {
  using namespace defrag;
  auto scale = bench::resolve_scale();
  scale.single_user_generations =
      std::min<std::uint32_t>(scale.single_user_generations, 12);
  bench::print_header(
      "Ablation — offline GC + compaction (DDFS store, keep last 3)",
      "Mark-and-sweep over retained recipes; live chunks are rewritten in "
      "newest-recipe order, so compaction both reclaims space and undoes "
      "de-linearization for the backups that survive it.",
      scale);

  const EngineConfig cfg = bench::paper_engine_config();
  DedupSystem sys(EngineKind::kDdfs, cfg);
  workload::SingleUserSeries series(scale.seed, scale.fs);
  const std::uint32_t gens = scale.single_user_generations;
  for (std::uint32_t g = 1; g <= gens; ++g) {
    sys.ingest_as(g, series.next().stream);
  }
  const auto& base = dynamic_cast<const EngineBase&>(sys.engine());

  auto restore_rate = [&](const ContainerStore& store, const Recipe& recipe) {
    RestoreOptions opt;
    opt.cache_containers = cfg.restore_cache_containers;
    return restore_with_strategy(store, recipe, cfg.disk, opt, nullptr);
  };

  const std::vector<std::uint32_t> keep = {gens - 2, gens - 1, gens};
  Compactor compactor(cfg.container_bytes);
  ContainerStore fresh_store;
  RecipeStore fresh_recipes;
  DiskSim gc_sim(cfg.disk);
  const CompactionResult gc = compactor.compact(
      base.container_store(), base.recipe_store(), keep, &fresh_store,
      &fresh_recipes, gc_sim);

  Table t({"generation", "before_MB_s", "after_MB_s", "before_loads",
           "after_loads"});
  double before_last = 0.0, after_last = 0.0;
  for (std::uint32_t g : keep) {
    const RestoreResult before =
        restore_rate(base.container_store(), base.recipe_store().get(g));
    const RestoreResult after =
        restore_rate(fresh_store, fresh_recipes.get(g));
    t.add_row({Table::integer(g), Table::num(before.read_mb_s(), 1),
               Table::num(after.read_mb_s(), 1),
               Table::integer(static_cast<long long>(before.container_loads)),
               Table::integer(static_cast<long long>(after.container_loads))});
    if (g == gens) {
      before_last = before.read_mb_s();
      after_last = after.read_mb_s();
    }
  }
  t.print();

  std::printf(
      "\nreclaimed %s of %s (%.1f%%), %zu -> %zu containers, GC took %.2fs "
      "simulated\n",
      format_bytes(gc.dead_bytes).c_str(),
      format_bytes(gc.dead_bytes + gc.live_bytes).c_str(),
      gc.reclaimed_fraction() * 100.0, gc.containers_before,
      gc.containers_after, gc.sim_seconds);

  bench::check_shape("compaction reclaims space", gc.dead_bytes > 0,
                     static_cast<double>(gc.dead_bytes), 0.0);
  bench::check_shape("newest generation restores faster after compaction",
                     after_last > before_last, after_last, before_last);
  return 0;
}

// Fig. 2 — the degradation of DDFS deduplication throughput over 20 full
// backup generations of a single user's file system.
//
// Paper: 213 MB/s at generation 1 decaying to 110 MB/s at generation 20
// (roughly 2x). We assert the shape: monotone-ish decay with a final/first
// ratio well below 1.
#include <cstdio>

#include "common/table.h"
#include "harness.h"

int main() {
  using namespace defrag;
  const auto scale = bench::resolve_scale();
  bench::print_header(
      "Fig. 2 — DDFS-Like deduplication throughput vs backup generation",
      "De-linearization scatters each stream's duplicates over more "
      "containers; locality-preserved caching prefetches get less useful and "
      "throughput decays (paper: 213 -> 110 MB/s over 20 generations).",
      scale);

  const auto run = bench::run_single_user(EngineKind::kDdfs, scale);

  Table t({"generation", "throughput_MB_s", "seeks", "dedup_ratio_%",
           "segments"});
  for (const auto& b : run.backups) {
    const double dedup_pct =
        b.logical_bytes == 0
            ? 0.0
            : 100.0 * static_cast<double>(b.removed_bytes) /
                  static_cast<double>(b.logical_bytes);
    t.add_row({Table::integer(b.generation),
               Table::num(b.throughput_mb_s(), 1),
               Table::integer(static_cast<long long>(b.io.seeks)),
               Table::num(dedup_pct, 1),
               Table::integer(static_cast<long long>(b.segment_count))});
  }
  t.print();
  std::printf("\n");

  const double first = run.backups.front().throughput_mb_s();
  const double last = run.backups.back().throughput_mb_s();
  bench::check_shape("throughput decays across generations (last < 0.8*first)",
                     last < 0.8 * first, last, first);

  // Later-half mean below earlier-half mean (robust to per-gen noise).
  double early = 0.0, late = 0.0;
  const std::size_t n = run.backups.size();
  for (std::size_t i = 0; i < n / 2; ++i) early += run.backups[i].throughput_mb_s();
  for (std::size_t i = n / 2; i < n; ++i) late += run.backups[i].throughput_mb_s();
  early /= static_cast<double>(n / 2);
  late /= static_cast<double>(n - n / 2);
  bench::check_shape("late-half mean below early-half mean", late < early,
                     late, early);
  return 0;
}

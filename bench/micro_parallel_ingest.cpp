// Micro-bench of the parallel ingest fast path (wall-clock, real machine).
//
// Two sweeps over one synthetic stream (256 MiB, or 16 MiB under
// DEFRAG_BENCH_SCALE=tiny):
//
//   1. multi-stream scaling — the stream is sliced into W independent
//      streams ingested concurrently through one ParallelIngestor
//      (lock-striped index + per-stream container appenders), W in
//      {1, 2, 4, 8};
//   2. SPSC pipeline sweep — one stream through StreamPipeline with
//      {1, 2, 4} fingerprint workers against the synchronous baseline,
//      reporting the per-stage busy times and achieved overlap.
//
// Speedups here are *wall-clock* and bounded by the host's core count —
// `system.bench.hardware_concurrency` is recorded alongside the results so
// a committed snapshot is interpretable (on a single-core host the
// expected scaling is ~1.0x and the interesting numbers are the contention
// overhead and the pipeline overlap accounting). Unlike the fig*_ benches,
// nothing here depends on the simulated disk clock.
//
// DEFRAG_METRICS_JSON=<path> dumps the registry (defrag.metrics.v1) on
// exit, including the sweep results under `system.bench.*`.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/parallel_ingest.h"
#include "dedup/pipeline.h"
#include "harness.h"
#include "obs/metrics.h"

namespace defrag {
namespace {

Bytes bench_stream(std::size_t n) {
  // Incompressible noise: every chunk is unique, so the index takes the
  // all-miss (claim + publish) worst case for lock contention and the
  // store appends every byte — the heaviest load on both shared paths.
  Bytes b(n);
  Xoshiro256 rng(20120701);
  rng.fill(b);
  return b;
}

int run() {
  bench::resolve_scale();  // arms the DEFRAG_METRICS_JSON exit hook
  const char* scale_env = std::getenv("DEFRAG_BENCH_SCALE");
  const bool tiny = scale_env != nullptr && std::strcmp(scale_env, "tiny") == 0;
  const std::size_t total_bytes = (tiny ? 16ull : 256ull) << 20;
  const Bytes data = bench_stream(total_bytes);
  const ByteView view(data);

  auto& reg = obs::MetricsRegistry::global();
  const unsigned cores = std::thread::hardware_concurrency();
  reg.gauge("system.bench.hardware_concurrency").set(cores);
  reg.gauge("system.bench.parallel_ingest.stream_bytes")
      .set(static_cast<double>(total_bytes));

  std::printf("micro_parallel_ingest: %zu MiB stream, %u hardware threads\n\n",
              total_bytes >> 20, cores);

  std::printf("multi-stream scaling (one ParallelIngestor, W streams):\n");
  std::printf("  %-8s %10s %10s %9s\n", "streams", "wall_s", "MB/s",
              "speedup");
  double base_mb_s = 0.0;
  for (const std::size_t w : {1u, 2u, 4u, 8u}) {
    ParallelIngestor ingestor;  // fresh store+index per W
    std::vector<ByteView> streams;
    const std::size_t slice = total_bytes / w;
    for (std::size_t i = 0; i < w; ++i) {
      streams.push_back(view.subspan(i * slice, slice));
    }
    const ParallelIngestResult res = ingestor.ingest(streams);
    const double mb_s = res.throughput_mb_s();
    if (w == 1) base_mb_s = mb_s;
    const double speedup = base_mb_s > 0.0 ? mb_s / base_mb_s : 0.0;
    std::printf("  %-8zu %10.3f %10.1f %8.2fx\n", w, res.wall_seconds, mb_s,
                speedup);
    const std::string suffix = "_w" + std::to_string(w);
    reg.gauge("system.bench.parallel_ingest.mb_s" + suffix).set(mb_s);
    reg.gauge("system.bench.parallel_ingest.speedup" + suffix).set(speedup);
  }

  std::printf("\nSPSC pipeline sweep (one stream, W fingerprint workers):\n");
  std::printf("  %-8s %10s %10s %10s %10s %10s\n", "workers", "wall_s",
              "chunk_s", "fp_s", "stall_s", "overlap_s");
  const auto chunker = make_chunker(ChunkerKind::kGear, {});
  {
    // Synchronous baseline: chunk + fingerprint inline, like the engines
    // with fingerprint_threads == 0.
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<StreamChunk> chunks;
    chunker->split_to(view, [&](const ChunkRef& r) {
      chunks.push_back(StreamChunk{
          Fingerprint::of(view.subspan(r.offset, r.size)), r.offset, r.size});
    });
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("  %-8s %10.3f %10s %10s %10s %10s   (%zu chunks)\n", "sync",
                wall, "-", "-", "-", "-", chunks.size());
    reg.gauge("system.bench.pipeline.wall_s_sync").set(wall);
  }
  for (const std::size_t w : {1u, 2u, 4u}) {
    StreamPipeline pipeline(*chunker, w);
    PipelineStats st;
    pipeline.run(view, &st);
    std::printf("  %-8zu %10.3f %10.3f %10.3f %10.3f %10.3f\n", w,
                st.wall_seconds, st.chunk_seconds, st.fingerprint_seconds,
                st.producer_stall_seconds, st.overlap_seconds());
    const std::string suffix = "_w" + std::to_string(w);
    reg.gauge("system.bench.pipeline.wall_s" + suffix).set(st.wall_seconds);
    reg.gauge("system.bench.pipeline.overlap_s" + suffix)
        .set(st.overlap_seconds());
  }
  return 0;
}

}  // namespace
}  // namespace defrag

int main() { return defrag::run(); }
